package twitter

import (
	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/par"
	"twigraph/internal/spmat"
)

// Algebraic (matrix) execution for the NeoStore multi-hop queries,
// mirroring sparkstore_matrix.go over the record-store engine. The
// first hop is always built imperatively — one relationship-chain walk
// for the anchor, cheap at any density — and its weighted frontier
// feeds the density gate: MethodMatrix forces the row-gather,
// MethodAuto runs it only on dense-enough frontiers and otherwise
// falls through to the store's existing paths (the Cypher plan at
// Workers=1, the sharded imperative restatement above that). Per-edge
// counting at both hops keeps results byte-identical to both.

// SetExecMethod selects the execution backend for the multi-hop
// workload queries (nav, matrix, auto) and propagates the choice to
// the declarative engine, whose var-length expansions gate through the
// same rule.
func (s *NeoStore) SetExecMethod(m spmat.Method) {
	s.method = m
	s.engine.SetExecMethod(m)
}

// ExecMethod returns the configured execution backend.
func (s *NeoStore) ExecMethod() spmat.Method { return s.method }

// neoGate builds the density gate for a hop expanding into nodes of
// candLabel. The record store keeps no per-type relationship counts,
// so the mean degree is the global estimate rels/nodes — coarse, but
// the gate only has to separate hub frontiers (hundreds of rows) from
// sparse ones (a handful), and those differ by orders of magnitude.
func (s *NeoStore) neoGate(candLabel string) spmat.Gate {
	cand := 0
	if b := s.db.NodesByLabel(s.db.LabelID(candLabel)); b != nil {
		cand = b.Cardinality()
	}
	return spmat.NewGate(cand, int(s.db.NodeCount()), int(s.db.RelCount()))
}

// preGate is auto mode's cheap first check: the anchor's O(1) degree
// counter (via RelSource.Row) bounds the frontier size, so sparse
// anchors skip the chain walk that would materialise a frontier the
// exact gate below discards. Forced matrix always passes; nav never
// reaches this file. A false return records the navigational plan
// decision.
func (s *NeoStore) preGate(first spmat.Source, anchor uint64, g spmat.Gate) bool {
	if s.method == spmat.MethodAuto && !g.UseMatrix(spmat.EstimateFrontier(first, anchor)) {
		s.spm.CountHop(false)
		return false
	}
	return true
}

// gatherSecondHop runs the gated hop: consult the gate (recording the
// choice), then gather the frontier's rows of second into a dense
// accumulator sharded across workers. Returns used=false when the gate
// sends the hop to the navigational path.
func (s *NeoStore) gatherSecondHop(q *runningQuery, frontier []spmat.WeightedID, second spmat.Source, g spmat.Gate) (*spmat.Accum, bool, error) {
	if !g.Pick(s.method, len(frontier)) {
		s.spm.CountHop(false)
		return nil, false, nil
	}
	s.spm.CountHop(true)
	if err := s.db.CheckCtx(q.ctx); err != nil {
		return nil, true, err
	}
	acc, err := spmat.Gather(second, frontier, 0, s.workers, s.parm, &s.accPool)
	if err != nil {
		return nil, true, err
	}
	return acc, true, nil
}

// topNAccumNode ranks an accumulator's columns like topNByNode ranks a
// counting map: resolve each node's key property, sort count
// descending then id ascending, trim to n. Property resolution is one
// record fetch per touched column — the matrix path's only per-result
// serial cost — so it shards across the worker pool; the shard-order
// concatenation feeds the same total-order sort at every worker count.
// The accumulator is recycled.
func (s *NeoStore) topNAccumNode(acc *spmat.Accum, key graph.AttrID, n int, skip func(col uint64) bool) ([]Counted, error) {
	cols := acc.Touched()
	w := par.WorkersForSize(s.workers, len(cols), spmat.MinRowsPerShard)
	type shard struct {
		out []Counted
		err error
	}
	shards := par.RunRanges(w, len(cols), s.parm, func(lo, hi int) shard {
		part := make([]Counted, 0, hi-lo)
		for _, col := range cols[lo:hi] {
			if skip != nil && skip(col) {
				continue
			}
			v, err := s.db.NodeProp(graph.NodeID(col), key)
			if err != nil {
				return shard{nil, err}
			}
			part = append(part, Counted{ID: v.Int(), Count: acc.Count(col)})
		}
		return shard{part, nil}
	})
	out := make([]Counted, 0, len(cols))
	for _, sh := range shards {
		if sh.err != nil {
			s.accPool.Put(acc)
			return nil, sh.err
		}
		out = append(out, sh.out...)
	}
	s.accPool.Put(acc)
	sortCounted(out)
	if n < len(out) {
		out = out[:n]
	}
	return out, nil
}

// coMentionedMatrix is Q3.1 algebraically: frontier = the tweets
// mentioning A, gather their mentions-out rows, drop A.
func (s *NeoStore) coMentionedMatrix(q *runningQuery, uid int64, n int) ([]Counted, bool, error) {
	uidKey := s.db.PropKeyID(PropUID)
	mentions := s.db.RelTypeID(RelMentions)
	a, ok := s.db.FindNode(s.db.LabelID(LabelUser), uidKey, graph.IntValue(uid))
	if !ok {
		return []Counted{}, true, nil
	}
	first := s.db.RelSource(mentions, graph.Incoming)
	g := s.neoGate(LabelUser)
	if !s.preGate(first, uint64(a), g) {
		return nil, false, nil
	}
	frontier, err := spmat.WeightedFrontier(first, uint64(a), 0, &s.accPool)
	if err != nil {
		return nil, true, err
	}
	acc, used, err := s.gatherSecondHop(q, frontier, s.db.RelSource(mentions, graph.Outgoing), g)
	if !used || err != nil {
		return nil, used, err
	}
	out, err := s.topNAccumNode(acc, uidKey, n, func(col uint64) bool { return col == uint64(a) })
	return out, true, err
}

// coOccurringTagsMatrix is Q3.2 algebraically over the tags adjacency.
func (s *NeoStore) coOccurringTagsMatrix(q *runningQuery, tag string, n int) ([]CountedTag, bool, error) {
	tagKey := s.db.PropKeyID(PropTag)
	tags := s.db.RelTypeID(RelTags)
	h, ok := s.db.FindNode(s.db.LabelID(LabelHashtag), tagKey, graph.StringValue(tag))
	if !ok {
		return []CountedTag{}, true, nil
	}
	first := s.db.RelSource(tags, graph.Incoming)
	g := s.neoGate(LabelHashtag)
	if !s.preGate(first, uint64(h), g) {
		return nil, false, nil
	}
	frontier, err := spmat.WeightedFrontier(first, uint64(h), 0, &s.accPool)
	if err != nil {
		return nil, true, err
	}
	acc, used, err := s.gatherSecondHop(q, frontier, s.db.RelSource(tags, graph.Outgoing), g)
	if !used || err != nil {
		return nil, used, err
	}
	out := make([]CountedTag, 0, acc.Len())
	acc.ForEach(func(col uint64, c int64) {
		if err != nil || col == uint64(h) {
			return
		}
		v, perr := s.db.NodeProp(graph.NodeID(col), tagKey)
		if perr != nil {
			err = perr
			return
		}
		out = append(out, CountedTag{Tag: v.Str(), Count: c})
	})
	s.accPool.Put(acc)
	if err != nil {
		return nil, true, err
	}
	sortCountedTags(out)
	if n < len(out) {
		out = out[:n]
	}
	return out, true, nil
}

// recommendMatrix is Q4.1 (dir=Outgoing) / Q4.2 (dir=Incoming)
// algebraically. The frontier's distinct ids are exactly the `direct`
// exclusion set, so no second first-hop walk is needed. Q4.2's
// navigational e1 != e2 guard has no algebraic counterpart: reusing
// the first-hop edge backwards lands on A, which the col == a mask
// already drops.
func (s *NeoStore) recommendMatrix(q *runningQuery, uid int64, n int, dir graph.Direction) ([]Counted, bool, error) {
	uidKey := s.db.PropKeyID(PropUID)
	follows := s.db.RelTypeID(RelFollows)
	a, ok := s.db.FindNode(s.db.LabelID(LabelUser), uidKey, graph.IntValue(uid))
	if !ok {
		return []Counted{}, true, nil
	}
	first := s.db.RelSource(follows, graph.Outgoing)
	g := s.neoGate(LabelUser)
	if !s.preGate(first, uint64(a), g) {
		return nil, false, nil
	}
	frontier, err := spmat.WeightedFrontier(first, uint64(a), 0, &s.accPool)
	if err != nil {
		return nil, true, err
	}
	acc, used, err := s.gatherSecondHop(q, frontier, s.db.RelSource(follows, dir), g)
	if !used || err != nil {
		return nil, used, err
	}
	direct := make(map[uint64]bool, len(frontier))
	for _, f := range frontier {
		direct[f.ID] = true
	}
	out, err := s.topNAccumNode(acc, uidKey, n, func(col uint64) bool { return col == uint64(a) || direct[col] })
	return out, true, err
}

// influenceMatrix is Q5 algebraically: frontier = the tweets
// mentioning A, gather their posts-in rows (each tweet's author), drop
// A, then keep or drop A's followers.
func (s *NeoStore) influenceMatrix(q *runningQuery, uid int64, n int, keepFollowers bool) ([]Counted, bool, error) {
	uidKey := s.db.PropKeyID(PropUID)
	mentions := s.db.RelTypeID(RelMentions)
	posts := s.db.RelTypeID(RelPosts)
	follows := s.db.RelTypeID(RelFollows)
	a, ok := s.db.FindNode(s.db.LabelID(LabelUser), uidKey, graph.IntValue(uid))
	if !ok {
		return []Counted{}, true, nil
	}
	first := s.db.RelSource(mentions, graph.Incoming)
	g := s.neoGate(LabelUser)
	if !s.preGate(first, uint64(a), g) {
		return nil, false, nil
	}
	frontier, err := spmat.WeightedFrontier(first, uint64(a), 0, &s.accPool)
	if err != nil {
		return nil, true, err
	}
	acc, used, err := s.gatherSecondHop(q, frontier, s.db.RelSource(posts, graph.Incoming), g)
	if !used || err != nil {
		return nil, used, err
	}
	followers := map[uint64]bool{}
	if err := s.db.Relationships(a, follows, graph.Incoming, func(r neodb.Rel) bool {
		followers[uint64(r.Src)] = true
		return true
	}); err != nil {
		s.accPool.Put(acc)
		return nil, true, err
	}
	out, err := s.topNAccumNode(acc, uidKey, n, func(col uint64) bool {
		return col == uint64(a) || followers[col] != keepFollowers
	})
	return out, true, err
}

// shortestPathMatrix is Q6.1 algebraically: a direction-optimizing
// masked-SpMV BFS over the follows adjacency, with the user label's
// node set as the pull-side candidate universe. Both matrix and auto
// route here — auto's per-level decision for a BFS is push vs pull
// inside the kernel.
func (s *NeoStore) shortestPathMatrix(q *runningQuery, fromUID, toUID int64, maxHops int) (int, bool, error) {
	user := s.db.LabelID(LabelUser)
	uidKey := s.db.PropKeyID(PropUID)
	follows := s.db.RelTypeID(RelFollows)
	a, ok := s.db.FindNode(user, uidKey, graph.IntValue(fromUID))
	if !ok {
		return 0, false, nil
	}
	b, ok := s.db.FindNode(user, uidKey, graph.IntValue(toUID))
	if !ok {
		return 0, false, nil
	}
	s.spm.CountHop(true)
	return spmat.BFSLength(
		s.db.RelSource(follows, graph.Outgoing),
		s.db.RelSource(follows, graph.Incoming),
		s.db.NodesByLabel(user),
		uint64(a), uint64(b), maxHops, s.workers, s.neoGate(LabelUser), s.parm, s.spm,
		func() error { return s.db.CheckCtx(q.ctx) })
}
