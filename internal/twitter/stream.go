package twitter

import (
	"fmt"

	"twigraph/internal/gen"
)

// Apply replays one live-stream event (gen.Stream) against a store's
// transactional write path — the paper's §5 real-time update scenario.
func Apply(s UpdateStore, ev gen.Event) error {
	switch ev.Kind {
	case gen.EventNewUser:
		return s.AddUser(ev.UID, ev.ScreenName)
	case gen.EventNewFollow:
		return s.AddFollow(ev.UID, ev.TargetUID)
	case gen.EventNewTweet:
		return s.AddTweet(ev.UID, ev.TID, ev.Text, ev.Mentions, ev.Tags)
	}
	return fmt.Errorf("twitter: unknown event kind %v", ev.Kind)
}

// ApplyAll replays a batch of events, stopping at the first error. It
// returns how many events were applied.
func ApplyAll(s UpdateStore, evs []gen.Event) (int, error) {
	for i, ev := range evs {
		if err := Apply(s, ev); err != nil {
			return i, fmt.Errorf("event %d (%v): %w", i, ev.Kind, err)
		}
	}
	return len(evs), nil
}
