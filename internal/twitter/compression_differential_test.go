package twitter_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twigraph/internal/gen"
	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/obs"
	"twigraph/internal/sparkdb"
	"twigraph/internal/spmat"
	"twigraph/internal/twitter"
)

// TestCompressionDifferential is the run-container compression
// differential: both engines, with the sparkdb engine loaded twice —
// compressed (run containers, v2 image) and uncompressed (legacy
// representations, v1 image) — must return byte-identical results for
// every workload query under nav/matrix/auto at Workers=1 and
// Workers=8. Compression only changes how sets are stored, never what
// they contain.
func TestCompressionDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test builds three databases")
	}
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	if _, err := gen.Generate(smallCfg(), csvDir); err != nil {
		t.Fatal(err)
	}
	neoRes, err := load.BuildNeo(csvDir, filepath.Join(dir, "neo"), neodb.Config{CachePages: 1024}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { neoRes.Store.Close() })
	comp, err := load.BuildSpark(csvDir, sparkdb.ScriptOptions{
		ImagePath: filepath.Join(dir, "v2.img"),
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := load.BuildSpark(csvDir, sparkdb.ScriptOptions{
		ImagePath:     filepath.Join(dir, "v1.img"),
		NoCompression: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The compressed build must actually hold run containers, and its
	// image must be meaningfully smaller — the acceptance bar is 30%.
	if st := comp.Store.DB().BitmapStats(); st.Runs == 0 {
		t.Fatalf("compressed build has no run containers: %+v", st)
	}
	v2, err := os.Stat(filepath.Join(dir, "v2.img"))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := os.Stat(filepath.Join(dir, "v1.img"))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() > v1.Size()*7/10 {
		t.Errorf("v2 image %d bytes, want <= 70%% of v1 (%d bytes)", v2.Size(), v1.Size())
	}
	// The legacy image still loads and serves queries.
	legacy, err := sparkdb.Load(filepath.Join(dir, "v1.img"))
	if err != nil {
		t.Fatalf("legacy v1 image load: %v", err)
	}
	legacyStore, err := twitter.NewSparkStore(legacy)
	if err != nil {
		t.Fatal(err)
	}

	probes := []int64{1, 2, 3, 5, 17, 42, 100, 250, 299}
	tags := []string{"topic1", "topic2", "topic3", "topic10", "missing"}

	queries := []struct {
		name string
		run  func(s twitter.Store) (any, error)
	}{
		{"Q1.1-select", func(s twitter.Store) (any, error) {
			var out [][]int64
			for _, th := range []int64{0, 1, 5, 20} {
				r, err := s.UsersWithFollowersOver(th)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q2.1-followees", func(s twitter.Store) (any, error) {
			var out [][]int64
			for _, uid := range probes {
				r, err := s.Followees(uid)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q3.1-co-mentioned", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.CoMentionedUsers(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q3.2-co-occurring-hashtags", func(s twitter.Store) (any, error) {
			var out [][]twitter.CountedTag
			for _, tag := range tags {
				r, err := s.CoOccurringHashtags(tag, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q4.1-recommend-followees", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.RecommendFollowees(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q5.1-current-influence", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.CurrentInfluence(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q6.1-shortest-path", func(s twitter.Store) (any, error) {
			type res struct {
				Len   int
				Found bool
			}
			var out []res
			for _, p := range [][2]int64{{1, 2}, {1, 50}, {5, 250}, {17, 42}, {3, 3}} {
				l, ok, err := s.ShortestPathLength(p[0], p[1], 3)
				if err != nil {
					return nil, err
				}
				out = append(out, res{l, ok})
			}
			return out, nil
		}},
	}

	stores := []struct {
		name string
		s    methodStore
	}{
		{"neo", neoRes.Store},
		{"spark-compressed", comp.Store},
		{"spark-plain", plain.Store},
		{"spark-legacy-image", legacyStore},
	}
	methods := []spmat.Method{spmat.MethodNav, spmat.MethodMatrix, spmat.MethodAuto}

	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			// Baseline: the uncompressed sparkdb build, navigational,
			// sequential. Every compressed variant and every method and
			// worker-count combination must match it exactly; the neo
			// engine sweeps against its own nav/w1 baseline (cross-engine
			// row equality is TestDifferentialWorkload's job).
			plain.Store.SetExecMethod(spmat.MethodNav)
			plain.Store.SetWorkers(1)
			sparkBase, err := q.run(plain.Store)
			if err != nil {
				t.Fatalf("spark-plain nav/w1: %v", err)
			}
			neoRes.Store.SetExecMethod(spmat.MethodNav)
			neoRes.Store.SetWorkers(1)
			neoBase, err := q.run(neoRes.Store)
			if err != nil {
				t.Fatalf("neo nav/w1: %v", err)
			}
			for _, st := range stores {
				base := sparkBase
				if st.name == "neo" {
					base = neoBase
				}
				for _, m := range methods {
					for _, w := range []int{1, 8} {
						st.s.SetExecMethod(m)
						st.s.SetWorkers(w)
						got, err := q.run(st.s)
						if err != nil {
							t.Fatalf("%s %v/w%d: %v", st.name, m, w, err)
						}
						if !reflect.DeepEqual(got, base) {
							t.Fatalf("%s %v/w%d diverges from nav/w1 baseline:\n base: %#v\n  got: %#v",
								st.name, m, w, base, got)
						}
					}
				}
				st.s.SetExecMethod(spmat.MethodNav)
				st.s.SetWorkers(0)
			}
		})
	}

	// The compression gauges must be visible through the generic gauge
	// walk that `:stats` and /metrics render.
	seen := map[string]int64{}
	comp.Store.DB().Obs().EachGauge(func(name string, g *obs.Gauge) {
		seen[name] = g.Load()
	})
	for _, name := range []string{
		sparkdb.GBitmapArrayContainers,
		sparkdb.GBitmapRunContainers,
		sparkdb.GBitmapBitsetContainers,
		sparkdb.GBitmapMemBytes,
	} {
		if _, ok := seen[name]; !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
	if seen[sparkdb.GBitmapRunContainers] == 0 {
		t.Errorf("gauge %s is zero on a compressed build", sparkdb.GBitmapRunContainers)
	}
}
