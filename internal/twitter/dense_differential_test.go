package twitter_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"twigraph/internal/gen"
	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/sparkdb"
)

// TestDenseNodesDifferential forces every node in the record-store
// engine onto dense relationship groups (threshold 2) and replays the
// workload differential against the bitmap engine: the physical layout
// change must be invisible to every query.
func TestDenseNodesDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test builds two databases")
	}
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	cfg := smallCfg()
	if _, err := gen.Generate(cfg, csvDir); err != nil {
		t.Fatal(err)
	}
	neoRes, err := load.BuildNeo(csvDir, filepath.Join(dir, "neo"),
		neodb.Config{CachePages: 1024, DenseThreshold: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer neoRes.Store.Close()
	sparkRes, err := load.BuildSpark(csvDir, sparkdb.ScriptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	neo, spark := neoRes.Store, sparkRes.Store

	for _, uid := range []int64{1, 2, 7, 42, 150, 299} {
		a, err := neo.Followees(uid)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spark.Followees(uid)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("dense followees(%d): %v vs %v", uid, a, b)
		}
		at, _ := neo.TweetsOfFollowees(uid)
		bt, _ := spark.TweetsOfFollowees(uid)
		if !reflect.DeepEqual(at, bt) {
			t.Fatalf("dense tweets-of-followees(%d) diverged", uid)
		}
		ar, err := neo.RecommendFollowees(uid, 20)
		if err != nil {
			t.Fatal(err)
		}
		br, err := spark.RecommendFollowees(uid, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !countedEqual(ar, br) {
			t.Fatalf("dense recommendations(%d): %v vs %v", uid, ar, br)
		}
		ai, _ := neo.PotentialInfluence(uid, 20)
		bi, _ := spark.PotentialInfluence(uid, 20)
		if !countedEqual(ai, bi) {
			t.Fatalf("dense influence(%d): %v vs %v", uid, ai, bi)
		}
		la, oka, _ := neo.ShortestPathLength(uid, uid%250+17, 3)
		lb, okb, _ := spark.ShortestPathLength(uid, uid%250+17, 3)
		if oka != okb || (oka && la != lb) {
			t.Fatalf("dense shortest-path(%d): (%d,%v) vs (%d,%v)", uid, la, oka, lb, okb)
		}
	}

	// Updates keep working on dense nodes.
	if err := neo.AddUser(9001, "dense-new"); err != nil {
		t.Fatal(err)
	}
	if err := neo.AddFollow(9001, 1); err != nil {
		t.Fatal(err)
	}
	if err := spark.AddUser(9001, "dense-new"); err != nil {
		t.Fatal(err)
	}
	if err := spark.AddFollow(9001, 1); err != nil {
		t.Fatal(err)
	}
	a, _ := neo.Followees(9001)
	b, _ := spark.Followees(9001)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("post-update followees diverged: %v vs %v", a, b)
	}
}
