package twitter_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/sparkdb"
	"twigraph/internal/twitter"
)

// TestRandomGraphEquivalence builds many small random multigraphs
// through both engines' transactional write paths (not the bulk
// loaders) and checks the full workload agrees on each — a
// property-based differential test independent of the CSV pipeline.
func TestRandomGraphEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds many database pairs")
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			neo, spark := emptyPair(t)
			const nUsers = 30
			stores := []twitter.UpdateStore{neo, spark}

			for u := int64(1); u <= nUsers; u++ {
				for _, s := range stores {
					if err := s.AddUser(u, "u"); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Random follows, allowing parallel edges (multigraph).
			for i := 0; i < 120; i++ {
				src := rng.Int63n(nUsers) + 1
				dst := rng.Int63n(nUsers) + 1
				if src == dst {
					continue
				}
				for _, s := range stores {
					if err := s.AddFollow(src, dst); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Random tweets with mentions and tags.
			tags := []string{"a", "b", "c", "d"}
			for tid := int64(1); tid <= 60; tid++ {
				author := rng.Int63n(nUsers) + 1
				var mentions []int64
				seen := map[int64]bool{}
				for m := rng.Intn(3); m > 0; m-- {
					target := rng.Int63n(nUsers) + 1
					if target != author && !seen[target] {
						seen[target] = true
						mentions = append(mentions, target)
					}
				}
				var tw []string
				seenT := map[string]bool{}
				for k := rng.Intn(3); k > 0; k-- {
					tag := tags[rng.Intn(len(tags))]
					if !seenT[tag] {
						seenT[tag] = true
						tw = append(tw, tag)
					}
				}
				for _, s := range stores {
					if err := s.AddTweet(author, tid, "t", mentions, tw); err != nil {
						t.Fatal(err)
					}
				}
			}

			// The full workload agrees.
			for u := int64(1); u <= nUsers; u += 3 {
				compareAll(t, neo, spark, u, nUsers)
			}
			for _, tag := range tags {
				a, err := neo.CoOccurringHashtags(tag, 10)
				if err != nil {
					t.Fatal(err)
				}
				b, err := spark.CoOccurringHashtags(tag, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("seed %d tag %s: %v vs %v", seed, tag, a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("seed %d tag %s: %v vs %v", seed, tag, a, b)
					}
				}
			}
		})
	}
}

// emptyPair opens both engines with the schema registered but no data.
func emptyPair(t *testing.T) (*twitter.NeoStore, *twitter.SparkStore) {
	t.Helper()
	db, err := neodb.Open(filepath.Join(t.TempDir(), "neo"), neodb.Config{CachePages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	user := db.Label(twitter.LabelUser)
	tweet := db.Label(twitter.LabelTweet)
	hashtag := db.Label(twitter.LabelHashtag)
	for _, rel := range []string{twitter.RelFollows, twitter.RelPosts, twitter.RelMentions, twitter.RelTags} {
		db.RelType(rel)
	}
	for _, ix := range []struct {
		label graph.TypeID
		key   string
	}{
		{user, twitter.PropUID}, {tweet, twitter.PropTID},
		{hashtag, twitter.PropHID}, {hashtag, twitter.PropTag},
	} {
		if err := db.CreateIndex(ix.label, db.PropKey(ix.key)); err != nil {
			t.Fatal(err)
		}
	}
	neo := twitter.NewNeoStore(db)

	sdb := sparkdb.New(sparkdb.Config{})
	userT, err := sdb.NewNodeType(twitter.LabelUser)
	if err != nil {
		t.Fatal(err)
	}
	tweetT, err := sdb.NewNodeType(twitter.LabelTweet)
	if err != nil {
		t.Fatal(err)
	}
	hashT, err := sdb.NewNodeType(twitter.LabelHashtag)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{twitter.RelFollows, twitter.RelPosts, twitter.RelMentions, twitter.RelTags} {
		if _, err := sdb.NewEdgeType(rel, false); err != nil {
			t.Fatal(err)
		}
	}
	attrs := []struct {
		t       graph.TypeID
		name    string
		kind    graph.Kind
		indexed bool
	}{
		{userT, twitter.PropUID, graph.KindInt, true},
		{userT, twitter.PropScreenName, graph.KindString, false},
		{userT, twitter.PropFollowers, graph.KindInt, false},
		{tweetT, twitter.PropTID, graph.KindInt, true},
		{tweetT, twitter.PropText, graph.KindString, false},
		{hashT, twitter.PropHID, graph.KindInt, true},
		{hashT, twitter.PropTag, graph.KindString, true},
	}
	for _, a := range attrs {
		if _, err := sdb.NewAttribute(a.t, a.name, a.kind, a.indexed); err != nil {
			t.Fatal(err)
		}
	}
	spark, err := twitter.NewSparkStore(sdb)
	if err != nil {
		t.Fatal(err)
	}
	return neo, spark
}

func compareAll(t *testing.T, neo, spark twitter.Store, uid, nUsers int64) {
	t.Helper()
	checkInts := func(name string, a []int64, aerr error, b []int64, berr error) {
		if aerr != nil || berr != nil {
			t.Fatalf("%s(%d): %v / %v", name, uid, aerr, berr)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s(%d): %v vs %v", name, uid, a, b)
		}
	}
	a1, e1 := neo.Followees(uid)
	b1, e2 := spark.Followees(uid)
	checkInts("Followees", a1, e1, b1, e2)
	a2, e1 := neo.TweetsOfFollowees(uid)
	b2, e2 := spark.TweetsOfFollowees(uid)
	checkInts("TweetsOfFollowees", a2, e1, b2, e2)

	at, e1 := neo.HashtagsOfFollowees(uid)
	bt, e2 := spark.HashtagsOfFollowees(uid)
	if e1 != nil || e2 != nil || !reflect.DeepEqual(at, bt) {
		t.Fatalf("HashtagsOfFollowees(%d): %v (%v) vs %v (%v)", uid, at, e1, bt, e2)
	}

	checkCounted := func(name string, a []twitter.Counted, aerr error, b []twitter.Counted, berr error) {
		if aerr != nil || berr != nil {
			t.Fatalf("%s(%d): %v / %v", name, uid, aerr, berr)
		}
		if !countedEqual(a, b) {
			t.Fatalf("%s(%d): %v vs %v", name, uid, a, b)
		}
	}
	c1, e1 := neo.CoMentionedUsers(uid, 100)
	d1, e2 := spark.CoMentionedUsers(uid, 100)
	checkCounted("CoMentionedUsers", c1, e1, d1, e2)
	c2, e1 := neo.RecommendFollowees(uid, 100)
	d2, e2 := spark.RecommendFollowees(uid, 100)
	checkCounted("RecommendFollowees", c2, e1, d2, e2)
	c3, e1 := neo.RecommendFollowersOfFollowees(uid, 100)
	d3, e2 := spark.RecommendFollowersOfFollowees(uid, 100)
	checkCounted("RecommendFollowersOfFollowees", c3, e1, d3, e2)
	c4, e1 := neo.CurrentInfluence(uid, 100)
	d4, e2 := spark.CurrentInfluence(uid, 100)
	checkCounted("CurrentInfluence", c4, e1, d4, e2)
	c5, e1 := neo.PotentialInfluence(uid, 100)
	d5, e2 := spark.PotentialInfluence(uid, 100)
	checkCounted("PotentialInfluence", c5, e1, d5, e2)

	// Shortest paths to a few targets.
	for d := int64(1); d <= 3; d++ {
		target := (uid+d*7)%nUsers + 1
		la, oka, err := neo.ShortestPathLength(uid, target, 3)
		if err != nil {
			t.Fatal(err)
		}
		lb, okb, err := spark.ShortestPathLength(uid, target, 3)
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb || (oka && la != lb) {
			t.Fatalf("path %d->%d: (%d,%v) vs (%d,%v)", uid, target, la, oka, lb, okb)
		}
	}
}
