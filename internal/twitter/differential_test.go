package twitter_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"twigraph/internal/gen"
	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/sparkdb"
	"twigraph/internal/twitter"
)

// buildBoth generates a deterministic dataset and loads it into both
// engines. The two stores answer every Table 2 query over the same
// graph; any divergence is a bug in one engine.
func buildBoth(t testing.TB, cfg gen.Config) (*twitter.NeoStore, *twitter.SparkStore, gen.Summary) {
	t.Helper()
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	sum, err := gen.Generate(cfg, csvDir)
	if err != nil {
		t.Fatal(err)
	}
	neoRes, err := load.BuildNeo(csvDir, filepath.Join(dir, "neo"), neodb.Config{CachePages: 1024}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { neoRes.Store.Close() })
	sparkRes, err := load.BuildSpark(csvDir, sparkdb.ScriptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return neoRes.Store, sparkRes.Store, sum
}

func smallCfg() gen.Config {
	cfg := gen.Default()
	cfg.Users = 300
	cfg.AvgFollowees = 6
	cfg.Hashtags = 30
	cfg.MentionsPer = 0.8
	cfg.TagsPer = 0.6
	return cfg
}

func TestDifferentialWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test builds two databases")
	}
	neo, spark, sum := buildBoth(t, smallCfg())
	if sum.Follows == 0 || sum.Mentions == 0 || sum.Tags == 0 {
		t.Fatalf("degenerate dataset: %+v", sum)
	}

	probes := []int64{1, 2, 3, 5, 17, 42, 100, 250, 299}

	t.Run("Q1.1-select", func(t *testing.T) {
		for _, th := range []int64{0, 1, 5, 20, 1000} {
			a, err := neo.UsersWithFollowersOver(th)
			if err != nil {
				t.Fatal(err)
			}
			b, err := spark.UsersWithFollowersOver(th)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("threshold %d: neo %d rows, spark %d rows", th, len(a), len(b))
			}
		}
	})

	t.Run("Q2.1-followees", func(t *testing.T) {
		for _, uid := range probes {
			a, _ := neo.Followees(uid)
			b, _ := spark.Followees(uid)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("uid %d: neo %v, spark %v", uid, a, b)
			}
		}
	})

	t.Run("Q2.2-tweets-of-followees", func(t *testing.T) {
		for _, uid := range probes {
			a, _ := neo.TweetsOfFollowees(uid)
			b, _ := spark.TweetsOfFollowees(uid)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("uid %d: neo %d tweets, spark %d", uid, len(a), len(b))
			}
		}
	})

	t.Run("Q2.3-hashtags-of-followees", func(t *testing.T) {
		for _, uid := range probes {
			a, _ := neo.HashtagsOfFollowees(uid)
			b, _ := spark.HashtagsOfFollowees(uid)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("uid %d: neo %v, spark %v", uid, a, b)
			}
		}
	})

	t.Run("Q3.1-co-mentioned", func(t *testing.T) {
		for _, uid := range probes {
			a, err := neo.CoMentionedUsers(uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := spark.CoMentionedUsers(uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !countedEqual(a, b) {
				t.Fatalf("uid %d: neo %v, spark %v", uid, a, b)
			}
		}
	})

	t.Run("Q3.2-co-occurring-hashtags", func(t *testing.T) {
		for _, tag := range []string{"topic1", "topic2", "topic3", "topic10", "missing"} {
			a, err := neo.CoOccurringHashtags(tag, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := spark.CoOccurringHashtags(tag, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("tag %s: neo %v, spark %v", tag, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("tag %s [%d]: neo %v, spark %v", tag, i, a[i], b[i])
				}
			}
		}
	})

	t.Run("Q4.1-recommend-followees", func(t *testing.T) {
		for _, uid := range probes {
			a, err := neo.RecommendFollowees(uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := spark.RecommendFollowees(uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !countedEqual(a, b) {
				t.Fatalf("uid %d: neo %v, spark %v", uid, a, b)
			}
		}
	})

	t.Run("Q4.1-methods-agree", func(t *testing.T) {
		for _, uid := range probes[:4] {
			ref, err := neo.RecommendFolloweesMethod("b", uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []string{"a", "c"} {
				got, err := neo.RecommendFolloweesMethod(m, uid, 10)
				if err != nil {
					t.Fatalf("method %s: %v", m, err)
				}
				if !countedEqual(ref, got) {
					t.Fatalf("uid %d method %s: %v vs %v", uid, m, got, ref)
				}
			}
			// The traversal-framework rewrite agrees too.
			trav, err := neo.RecommendFolloweesTraversal(uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !countedEqual(ref, trav) {
				t.Fatalf("uid %d traversal: %v vs %v", uid, trav, ref)
			}
			// And Sparksee's traversal-class rewrite.
			strav, err := spark.RecommendFolloweesTraversal(uid, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !countedEqual(ref, strav) {
				t.Fatalf("uid %d spark traversal: %v vs %v", uid, strav, ref)
			}
		}
	})

	t.Run("Q4.2-recommend-followers-of-followees", func(t *testing.T) {
		for _, uid := range probes {
			a, _ := neo.RecommendFollowersOfFollowees(uid, 10)
			b, _ := spark.RecommendFollowersOfFollowees(uid, 10)
			if !countedEqual(a, b) {
				t.Fatalf("uid %d: neo %v, spark %v", uid, a, b)
			}
		}
	})

	t.Run("Q5-influence", func(t *testing.T) {
		for _, uid := range probes {
			a1, _ := neo.CurrentInfluence(uid, 10)
			b1, _ := spark.CurrentInfluence(uid, 10)
			if !countedEqual(a1, b1) {
				t.Fatalf("Q5.1 uid %d: neo %v, spark %v", uid, a1, b1)
			}
			a2, _ := neo.PotentialInfluence(uid, 10)
			b2, _ := spark.PotentialInfluence(uid, 10)
			if !countedEqual(a2, b2) {
				t.Fatalf("Q5.2 uid %d: neo %v, spark %v", uid, a2, b2)
			}
		}
	})

	t.Run("Q6.1-shortest-path", func(t *testing.T) {
		pairs := [][2]int64{{1, 2}, {1, 50}, {5, 250}, {17, 42}, {100, 299}, {3, 3}}
		for _, p := range pairs {
			la, oka, err := neo.ShortestPathLength(p[0], p[1], 3)
			if err != nil {
				t.Fatal(err)
			}
			lb, okb, err := spark.ShortestPathLength(p[0], p[1], 3)
			if err != nil {
				t.Fatal(err)
			}
			if oka != okb || (oka && la != lb) {
				t.Fatalf("pair %v: neo (%d,%v), spark (%d,%v)", p, la, oka, lb, okb)
			}
		}
	})
}

// countedEqual compares rankings, tolerating permutation within equal
// counts only via the normalised (count desc, id asc) order — i.e. it
// requires exact equality, which the shared tie-break guarantees.
func countedEqual(a, b []twitter.Counted) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUpdateWorkloadBothEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test builds two databases")
	}
	cfg := smallCfg()
	cfg.Users = 100
	neo, spark, _ := buildBoth(t, cfg)

	for _, s := range []twitter.UpdateStore{neo, spark} {
		if err := s.AddUser(9001, "newcomer"); err != nil {
			t.Fatalf("%s AddUser: %v", s.Name(), err)
		}
		if err := s.AddFollow(9001, 1); err != nil {
			t.Fatalf("%s AddFollow: %v", s.Name(), err)
		}
		if err := s.AddTweet(9001, 90010, "hello @user1 #topic1", []int64{1}, []string{"topic1"}); err != nil {
			t.Fatalf("%s AddTweet: %v", s.Name(), err)
		}
	}
	// Both engines see the same post-update state.
	a, _ := neo.Followees(9001)
	b, _ := spark.Followees(9001)
	if !reflect.DeepEqual(a, b) || len(a) != 1 || a[0] != 1 {
		t.Fatalf("followees after update: neo %v, spark %v", a, b)
	}
	// user1's mentioners now include 9001.
	am, _ := neo.CurrentInfluence(1, 100)
	bm, _ := spark.CurrentInfluence(1, 100)
	if !countedEqual(am, bm) {
		t.Fatalf("influence after update: neo %v, spark %v", am, bm)
	}
	found := false
	for _, c := range am {
		if c.ID == 9001 {
			found = true
		}
	}
	if !found {
		t.Error("new user not in current influence of user1")
	}
}

func TestStoreInterfacesComplete(t *testing.T) {
	var _ twitter.UpdateStore = (*twitter.NeoStore)(nil)
	var _ twitter.UpdateStore = (*twitter.SparkStore)(nil)
}
