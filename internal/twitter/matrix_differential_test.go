package twitter_test

import (
	"fmt"
	"reflect"
	"testing"

	"twigraph/internal/obs"
	"twigraph/internal/spmat"
	"twigraph/internal/twitter"
)

// methodStore is a store whose execution backend and worker count can
// both be toggled.
type methodStore interface {
	workerStore
	SetExecMethod(spmat.Method)
	ExecMethod() spmat.Method
	Obs() *obs.Registry
}

// TestExecMethodDifferential is the three-way execution differential:
// every gated workload query must return byte-identical results under
// the navigational, algebraic, and auto-gated backends, at Workers=1
// and Workers=8, on both engines. On the Neo4j-analog this covers all
// three execution styles at once — nav/w1 is the Cypher plan, nav/w8
// the sharded imperative restatement, and matrix the spmat kernels —
// extending the worker-count determinism contract to the method knob.
func TestExecMethodDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test builds two databases")
	}
	neo, spark, _ := buildBoth(t, smallCfg())

	probes := []int64{1, 2, 3, 5, 17, 42, 100, 250, 299}
	tags := []string{"topic1", "topic2", "topic3", "topic10", "missing"}
	pairs := [][2]int64{{1, 2}, {1, 50}, {5, 250}, {17, 42}, {100, 299}, {3, 3}}

	queries := []struct {
		name string
		run  func(s twitter.Store) (any, error)
	}{
		{"Q3.1-co-mentioned", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.CoMentionedUsers(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q3.2-co-occurring-hashtags", func(s twitter.Store) (any, error) {
			var out [][]twitter.CountedTag
			for _, tag := range tags {
				r, err := s.CoOccurringHashtags(tag, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q4.1-recommend-followees", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.RecommendFollowees(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q4.2-recommend-followers", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.RecommendFollowersOfFollowees(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q5.1-current-influence", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.CurrentInfluence(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q5.2-potential-influence", func(s twitter.Store) (any, error) {
			var out [][]twitter.Counted
			for _, uid := range probes {
				r, err := s.PotentialInfluence(uid, 10)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"Q6.1-shortest-path", func(s twitter.Store) (any, error) {
			type res struct {
				Len   int
				Found bool
			}
			var out []res
			for _, p := range pairs {
				l, ok, err := s.ShortestPathLength(p[0], p[1], 3)
				if err != nil {
					return nil, err
				}
				out = append(out, res{l, ok})
			}
			return out, nil
		}},
	}

	methods := []spmat.Method{spmat.MethodNav, spmat.MethodMatrix, spmat.MethodAuto}
	for _, s := range []methodStore{neo, spark} {
		for _, q := range queries {
			t.Run(fmt.Sprintf("%s/%s", s.Name(), q.name), func(t *testing.T) {
				defer func() {
					s.SetExecMethod(spmat.MethodNav)
					s.SetWorkers(0)
				}()
				s.SetExecMethod(spmat.MethodNav)
				s.SetWorkers(1)
				base, err := q.run(s)
				if err != nil {
					t.Fatalf("nav/w1: %v", err)
				}
				for _, m := range methods {
					for _, w := range []int{1, 8} {
						s.SetExecMethod(m)
						s.SetWorkers(w)
						got, err := q.run(s)
						if err != nil {
							t.Fatalf("%v/w%d: %v", m, w, err)
						}
						if !reflect.DeepEqual(got, base) {
							t.Fatalf("%v/w%d diverges from nav/w1:\n base: %v\n  got: %v", m, w, base, got)
						}
					}
				}
			})
		}
		// The sweeps above forced MethodMatrix on dense and sparse
		// anchors alike — the algebraic path must actually have run.
		if s.Obs().Counter(spmat.CMatrixHops).Load() == 0 {
			t.Errorf("%s: forced matrix sweep never incremented %s", s.Name(), spmat.CMatrixHops)
		}
	}
}
