package bitmap

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// shapeValues builds value sets with the shapes that exercise all
// three representations: scattered singletons (arrays), contiguous
// blocks (runs), and dense-random regions (bitsets).
func shapeValues(rng *rand.Rand) []uint64 {
	var vals []uint64
	blocks := 1 + rng.Intn(6)
	for i := 0; i < blocks; i++ {
		base := uint64(rng.Intn(3)) << containerBits
		switch rng.Intn(3) {
		case 0: // scattered
			for n := rng.Intn(200); n > 0; n-- {
				vals = append(vals, base+uint64(rng.Intn(containerSize)))
			}
		case 1: // contiguous block
			start := uint64(rng.Intn(containerSize - 1))
			length := uint64(rng.Intn(9000))
			for v := start; v <= start+length && v < containerSize; v++ {
				vals = append(vals, base+v)
			}
		default: // dense random region
			start := rng.Intn(containerSize / 2)
			for n := rng.Intn(6000); n > 0; n-- {
				vals = append(vals, base+uint64(start+rng.Intn(16000)))
			}
		}
	}
	return vals
}

func fromValues(vals []uint64) *Bitmap {
	b := New()
	for _, v := range vals {
		b.Add(v)
	}
	return b
}

func TestOptimizeIsCanonicalAndLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		vals := shapeValues(rng)
		plain := fromValues(vals)
		// Same contents via a different construction path: sorted bulk.
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		bulk := New()
		bulk.AddSorted(sorted)

		opt := plain.Clone().Optimize()
		opt2 := bulk.Clone().Optimize()
		if !opt.Equal(plain) {
			t.Fatalf("iter %d: Optimize changed contents", iter)
		}
		var w1, w2 bytes.Buffer
		if _, err := opt.WriteTo(&w1); err != nil {
			t.Fatal(err)
		}
		if _, err := opt2.WriteTo(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("iter %d: optimized serialization depends on construction history", iter)
		}
		// Idempotent: a second Optimize must not change the bytes.
		var w3 bytes.Buffer
		if _, err := opt.Optimize().WriteTo(&w3); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w3.Bytes()) {
			t.Fatalf("iter %d: Optimize is not idempotent", iter)
		}
		// Thaw restores a v1 image with identical contents.
		thawed := opt.Clone().Thaw()
		if thawed.HasRuns() || !thawed.Equal(plain) {
			t.Fatalf("iter %d: Thaw left runs or changed contents", iter)
		}
	}
}

func TestOptimizeRepresentationChoice(t *testing.T) {
	// One contiguous range: a single run beats both alternatives.
	r := New()
	r.AddRange(10, 60000)
	r.Optimize()
	if a, ru, s := r.ContainerCounts(); a != 0 || ru != 1 || s != 0 {
		t.Errorf("range container counts = %d/%d/%d, want 0/1/0", a, ru, s)
	}
	// Scattered sparse values: array wins (every value its own run).
	sp := Of(1, 5, 9, 100, 9000)
	sp.Optimize()
	if a, ru, s := sp.ContainerCounts(); a != 1 || ru != 0 || s != 0 {
		t.Errorf("sparse counts = %d/%d/%d, want 1/0/0", a, ru, s)
	}
	// Dense alternating bits: bitset wins (runs would need 4 bytes per
	// 2-bit period, arrays 2 bytes per value over the threshold).
	d := New()
	for v := uint64(0); v < containerSize; v += 2 {
		d.Add(v)
	}
	d.Optimize()
	if a, ru, s := d.ContainerCounts(); a != 0 || ru != 0 || s != 1 {
		t.Errorf("alternating counts = %d/%d/%d, want 0/0/1", a, ru, s)
	}
	// A full container is one run {0, 65535}.
	f := New()
	f.AddRange(0, containerSize-1)
	f.Optimize()
	if a, ru, s := f.ContainerCounts(); ru != 1 || a != 0 || s != 0 {
		t.Errorf("full-container counts = %d/%d/%d, want 0/1/0", a, ru, s)
	}
	if f.Cardinality() != containerSize {
		t.Errorf("full-container cardinality = %d", f.Cardinality())
	}
}

func TestRunContainerPointOps(t *testing.T) {
	b := New()
	b.AddRange(100, 70000) // spans two containers, stays run-encoded
	if a, ru, s := b.ContainerCounts(); ru != 2 || a != 0 || s != 0 {
		t.Fatalf("counts = %d/%d/%d, want 0/2/0", a, ru, s)
	}
	if b.Contains(99) || !b.Contains(100) || !b.Contains(70000) || b.Contains(70001) {
		t.Fatal("run membership boundaries wrong")
	}
	if b.Add(5000) {
		t.Error("Add of present value reported true (and thawed needlessly)")
	}
	if a, ru, _ := b.ContainerCounts(); ru != 2 || a != 0 {
		t.Error("redundant Add thawed a run container")
	}
	if !b.Add(80) || !b.Contains(80) {
		t.Error("Add of new value failed")
	}
	if !b.Remove(100) || b.Contains(100) {
		t.Error("Remove failed")
	}
	if mn, _ := b.Min(); mn != 80 {
		t.Errorf("Min = %d, want 80", mn)
	}
	if mx, _ := b.Max(); mx != 70000 {
		t.Errorf("Max = %d, want 70000", mx)
	}
}

func TestRunAwareKernelsMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		av, bv := shapeValues(rng), shapeValues(rng)
		pa, pb := fromValues(av), fromValues(bv)
		// All four representation combinations must agree with the
		// plain-plain baseline, value for value.
		combos := [][2]*Bitmap{
			{pa.Clone().Optimize(), pb},
			{pa, pb.Clone().Optimize()},
			{pa.Clone().Optimize(), pb.Clone().Optimize()},
		}
		wantAnd, wantOr, wantNot := And(pa, pb), Or(pa, pb), AndNot(pa, pb)
		wantAndN, wantOrN := AndCardinality(pa, pb), OrCardinality(pa, pb)
		for ci, cb := range combos {
			a, b := cb[0], cb[1]
			if !And(a, b).Equal(wantAnd) {
				t.Fatalf("iter %d combo %d: And diverges", iter, ci)
			}
			if !Or(a, b).Equal(wantOr) {
				t.Fatalf("iter %d combo %d: Or diverges", iter, ci)
			}
			if !AndNot(a, b).Equal(wantNot) {
				t.Fatalf("iter %d combo %d: AndNot diverges", iter, ci)
			}
			if n := AndCardinality(a, b); n != wantAndN {
				t.Fatalf("iter %d combo %d: AndCardinality = %d, want %d", iter, ci, n, wantAndN)
			}
			if n := OrCardinality(a, b); n != wantOrN {
				t.Fatalf("iter %d combo %d: OrCardinality = %d, want %d", iter, ci, n, wantOrN)
			}
			if Intersects(a, b) != (wantAndN > 0) {
				t.Fatalf("iter %d combo %d: Intersects diverges", iter, ci)
			}
			// In-place forms, receivers cloned so combos stay intact.
			if !a.Clone().Union(b).Equal(wantOr) {
				t.Fatalf("iter %d combo %d: Union diverges", iter, ci)
			}
			if !a.Clone().Intersect(b).Equal(wantAnd) {
				t.Fatalf("iter %d combo %d: Intersect diverges", iter, ci)
			}
			if !a.Clone().Difference(b).Equal(wantNot) {
				t.Fatalf("iter %d combo %d: Difference diverges", iter, ci)
			}
			if !OrMany(a, b).Equal(wantOr) {
				t.Fatalf("iter %d combo %d: OrMany diverges", iter, ci)
			}
		}
	}
}

func TestAddRangeOntoRunContainer(t *testing.T) {
	// Random interval insertions must coalesce exactly like the model.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		fast, slow := New(), New()
		for n := 0; n < 12; n++ {
			lo := uint64(rng.Intn(containerSize))
			hi := lo + uint64(rng.Intn(5000))
			if hi > containerSize-1 {
				hi = containerSize - 1
			}
			fast.AddRange(lo, hi)
			for v := lo; v <= hi; v++ {
				slow.Add(v)
			}
			if !fast.Equal(slow) || fast.Cardinality() != slow.Cardinality() {
				t.Fatalf("iter %d: run coalescing diverged after [%d,%d]", iter, lo, hi)
			}
		}
	}
	// Adjacency boundaries merge into a single run.
	b := New()
	b.AddRange(10, 19)
	b.AddRange(30, 39)
	b.AddRange(20, 29) // bridges both neighbors
	if a, ru, s := b.ContainerCounts(); ru != 1 || a != 0 || s != 0 {
		t.Fatalf("counts = %d/%d/%d, want one run container", a, ru, s)
	}
	if got := b.containers[0].runs; len(got) != 1 || got[0] != (run{10, 29}) {
		t.Fatalf("runs = %v, want [{10 29}]", got)
	}
}

func TestSerializationV2RoundTrip(t *testing.T) {
	b := New()
	b.AddRange(0, 100_000)
	b.Add(1 << 40)
	b.Optimize()

	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got := New()
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Fatal("v2 round trip changed contents")
	}
	var again bytes.Buffer
	if _, err := got.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("v2 image is not byte-stable across a round trip")
	}
	// A thawed bitmap keeps writing the legacy v1 magic.
	var v1 bytes.Buffer
	if _, err := b.Clone().Thaw().WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	v1img := append([]byte(nil), v1.Bytes()...)
	if bytes.Equal(v1img[:4], first[:4]) {
		t.Fatal("thawed bitmap still writes the v2 magic")
	}
	legacy := New()
	if _, err := legacy.ReadFrom(bytes.NewReader(v1img)); err != nil {
		t.Fatal(err)
	}
	if !legacy.Equal(b) {
		t.Fatal("v1 image failed to load")
	}
	if len(first) >= len(v1img) {
		t.Fatalf("v2 image (%d bytes) not smaller than v1 (%d bytes)", len(first), len(v1img))
	}
}

func TestMemBytesAndContainerCounts(t *testing.T) {
	b := New()
	b.AddRange(0, 1_000_000)
	before := b.Clone().Thaw().MemBytes()
	after := b.Clone().Optimize().MemBytes()
	if after >= before/10 {
		t.Errorf("Optimize shrank a 1M-value range only %d -> %d bytes", before, after)
	}
	if b.MemBytes() <= 0 {
		t.Error("MemBytes must be positive for a non-empty bitmap")
	}
	a, ru, s := b.Clone().Optimize().ContainerCounts()
	if ru == 0 || a+ru+s != len(b.containers) {
		t.Errorf("counts %d/%d/%d inconsistent with %d containers", a, ru, s, len(b.containers))
	}
}

// TestAddSortedSetZeroAllocs pins the single-pass word-OR merge: a
// sorted batch landing in an existing bitset container allocates
// nothing.
func TestAddSortedSetZeroAllocs(t *testing.T) {
	b := New()
	b.AddRange(0, arrayToBitmapThreshold+1000)
	b.containers[0].thaw() // force the bitset representation
	if b.containers[0].set == nil {
		t.Fatal("setup: container is not a bitset")
	}
	vals := make([]uint64, 512)
	for i := range vals {
		vals[i] = uint64(i * 3)
	}
	if n := testing.AllocsPerRun(100, func() { b.AddSorted(vals) }); n > 0 {
		t.Errorf("AddSorted into a bitset container allocates %.1f times per call, want 0", n)
	}
}

// FuzzContainerOps drives a random operation sequence against three
// states: a plain bitmap, a bitmap re-Optimized after every step, and
// a map model. All three must agree on cardinality, iteration order,
// and membership, and the serialized image must be byte-stable.
func FuzzContainerOps(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte{0x40, 0x00, 0x10, 0xff, 0x80, 0x00, 0x20, 0x01, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, opt := New(), New()
		model := map[uint64]bool{}
		for i := 0; i+3 <= len(data); i += 3 {
			op := data[i] >> 6
			v := uint64(data[i]&0x3f)<<16 | uint64(data[i+1])<<8 | uint64(data[i+2])
			switch op {
			case 0: // Add
				plain.Add(v)
				opt.Add(v)
				model[v] = true
			case 1: // Remove
				plain.Remove(v)
				opt.Remove(v)
				delete(model, v)
			case 2: // AddRange
				hi := v + uint64(data[i+1])*7
				plain.AddRange(v, hi)
				opt.AddRange(v, hi)
				for x := v; x <= hi; x++ {
					model[x] = true
				}
			default: // AddSorted of a small strided batch
				batch := make([]uint64, 0, 8)
				for k := uint64(0); k < 8; k++ {
					batch = append(batch, v+k*uint64(data[i+2]%5))
				}
				sort.Slice(batch, func(a, b int) bool { return batch[a] < batch[b] })
				plain.AddSorted(batch)
				opt.AddSorted(batch)
				for _, x := range batch {
					model[x] = true
				}
			}
			opt.Optimize()
		}
		if plain.Cardinality() != len(model) || opt.Cardinality() != len(model) {
			t.Fatalf("cardinality: plain %d opt %d model %d", plain.Cardinality(), opt.Cardinality(), len(model))
		}
		ps, os := plain.Slice(), opt.Slice()
		if len(ps) != len(os) {
			t.Fatalf("iteration lengths diverge: %d vs %d", len(ps), len(os))
		}
		for i := range ps {
			if ps[i] != os[i] {
				t.Fatalf("iteration order diverges at %d: %d vs %d", i, ps[i], os[i])
			}
			if !opt.Contains(ps[i]) || !model[ps[i]] {
				t.Fatalf("membership of %d diverges", ps[i])
			}
		}
		var w1 bytes.Buffer
		if _, err := opt.WriteTo(&w1); err != nil {
			t.Fatal(err)
		}
		rt := New()
		if _, err := rt.ReadFrom(bytes.NewReader(w1.Bytes())); err != nil {
			t.Fatal(err)
		}
		var w2 bytes.Buffer
		if _, err := rt.WriteTo(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatal("serialized image is not byte-stable across a round trip")
		}
		if !rt.Equal(plain) {
			t.Fatal("round trip changed contents")
		}
	})
}

// BenchmarkAddSortedSet measures the steady-state sorted-batch merge
// into an existing bitset container; the interesting number is
// allocs/op, pinned at zero.
func BenchmarkAddSortedSet(b *testing.B) {
	bm := New()
	bm.AddRange(0, arrayToBitmapThreshold+1000)
	bm.containers[0].thaw()
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(i * 13 % containerSize)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.AddSorted(vals)
	}
}

func BenchmarkAndRunVsArray(b *testing.B) {
	runs := New()
	runs.AddRange(0, 60000)
	runs.Optimize()
	arr := New()
	for v := uint64(0); v < containerSize; v += 17 {
		arr.Add(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if And(runs, arr).IsEmpty() {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkAndCardinalityRunRun(b *testing.B) {
	x, y := New(), New()
	for v := uint64(0); v < containerSize; v += 128 {
		x.AddRange(v, v+63)
		y.AddRange(v+32, v+95)
	}
	x.Optimize()
	y.Optimize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if AndCardinality(x, y) == 0 {
			b.Fatal("empty")
		}
	}
}
