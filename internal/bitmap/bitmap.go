// Package bitmap implements a compressed bitmap over uint64 keys, the
// storage substrate of the Sparksee-analog engine. Sparksee "stores
// graphs using a compressed bitmap-based data structure"
// (Martínez-Bazan et al., IDEAS 2012); this package provides the
// equivalent: a two-level structure that chunks the key space into
// 2^16-wide containers, each stored as a sorted array of 16-bit
// offsets (sparse), a 1024-word bitset (dense), or a sorted run list
// (contiguous — see runs.go and Optimize).
//
// All set-algebra operations (And, Or, AndNot) operate container-wise,
// so intersecting a small neighbourhood with a huge type bitmap touches
// only the containers the small side owns — the property that makes
// bitmap graph stores competitive for adjacency queries.
package bitmap

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// arrayToBitmapThreshold is the container cardinality above which a
// sorted array container is converted to a fixed bitset container.
// 4096 16-bit entries occupy the same 8 KiB as a full bitset, so this is
// the break-even point used by roaring bitmaps as well.
const arrayToBitmapThreshold = 4096

const (
	containerBits = 16
	containerSize = 1 << containerBits // values per container
	wordsPerSet   = containerSize / 64 // words in a bitset container
)

// container holds one 2^16-wide chunk. Exactly one of array/set/runs
// is non-nil.
type container struct {
	key   uint64   // high bits (value >> 16)
	array []uint16 // sorted, unique; nil otherwise
	set   []uint64 // wordsPerSet words; nil otherwise
	runs  []run    // sorted, disjoint, non-adjacent; nil otherwise
	card  int      // cardinality when set or runs != nil (arrays use len)
}

// Bitmap is a compressed set of uint64 values. The zero value is an
// empty set ready for use. Bitmap is not safe for concurrent mutation;
// concurrent readers are safe once no writer is active.
type Bitmap struct {
	containers []*container // sorted by key
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// Of returns a bitmap containing the given values.
func Of(values ...uint64) *Bitmap {
	b := New()
	for _, v := range values {
		b.Add(v)
	}
	return b
}

// findContainer returns the index of the container with the given key,
// or the insertion point and false.
func (b *Bitmap) findContainer(key uint64) (int, bool) {
	i := sort.Search(len(b.containers), func(i int) bool {
		return b.containers[i].key >= key
	})
	if i < len(b.containers) && b.containers[i].key == key {
		return i, true
	}
	return i, false
}

// Add inserts v into the set. It reports whether v was newly added.
func (b *Bitmap) Add(v uint64) bool {
	key, low := v>>containerBits, uint16(v&(containerSize-1))
	i, ok := b.findContainer(key)
	if !ok {
		c := &container{key: key, array: []uint16{low}}
		b.containers = append(b.containers, nil)
		copy(b.containers[i+1:], b.containers[i:])
		b.containers[i] = c
		return true
	}
	return b.containers[i].add(low)
}

// Remove deletes v from the set. It reports whether v was present.
func (b *Bitmap) Remove(v uint64) bool {
	key, low := v>>containerBits, uint16(v&(containerSize-1))
	i, ok := b.findContainer(key)
	if !ok {
		return false
	}
	c := b.containers[i]
	removed := c.remove(low)
	if removed && c.cardinality() == 0 {
		b.containers = append(b.containers[:i], b.containers[i+1:]...)
	}
	return removed
}

// Contains reports whether v is in the set.
func (b *Bitmap) Contains(v uint64) bool {
	key, low := v>>containerBits, uint16(v&(containerSize-1))
	i, ok := b.findContainer(key)
	return ok && b.containers[i].contains(low)
}

// Cardinality returns the number of values in the set.
func (b *Bitmap) Cardinality() int {
	n := 0
	for _, c := range b.containers {
		n += c.cardinality()
	}
	return n
}

// IsEmpty reports whether the set has no values.
func (b *Bitmap) IsEmpty() bool { return len(b.containers) == 0 }

// Clear removes all values.
func (b *Bitmap) Clear() { b.containers = nil }

// Clone returns a deep copy of the set.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{containers: make([]*container, len(b.containers))}
	for i, c := range b.containers {
		out.containers[i] = c.clone()
	}
	return out
}

// Min returns the smallest value and true, or 0 and false when empty.
func (b *Bitmap) Min() (uint64, bool) {
	if len(b.containers) == 0 {
		return 0, false
	}
	c := b.containers[0]
	return c.key<<containerBits | uint64(c.min()), true
}

// Max returns the largest value and true, or 0 and false when empty.
func (b *Bitmap) Max() (uint64, bool) {
	if len(b.containers) == 0 {
		return 0, false
	}
	c := b.containers[len(b.containers)-1]
	return c.key<<containerBits | uint64(c.max()), true
}

// ForEach calls fn for every value in ascending order until fn returns
// false.
func (b *Bitmap) ForEach(fn func(uint64) bool) {
	for _, c := range b.containers {
		base := c.key << containerBits
		if c.array != nil {
			for _, low := range c.array {
				if !fn(base | uint64(low)) {
					return
				}
			}
			continue
		}
		if c.runs != nil {
			for _, r := range c.runs {
				v := r.start
				for {
					if !fn(base | uint64(v)) {
						return
					}
					if v == r.last() {
						break
					}
					v++
				}
			}
			continue
		}
		for w, word := range c.set {
			for word != 0 {
				t := bits.TrailingZeros64(word)
				if !fn(base | uint64(w*64+t)) {
					return
				}
				word &^= 1 << t
			}
		}
	}
}

// Slice returns all values in ascending order.
func (b *Bitmap) Slice() []uint64 {
	out := make([]uint64, 0, b.Cardinality())
	b.ForEach(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// String renders a small bitmap for debugging.
func (b *Bitmap) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	n := 0
	b.ForEach(func(v uint64) bool {
		if n > 0 {
			sb.WriteByte(' ')
		}
		if n >= 32 {
			sb.WriteString("...")
			return false
		}
		fmt.Fprintf(&sb, "%d", v)
		n++
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// Equal reports whether two bitmaps contain exactly the same values.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if len(b.containers) != len(o.containers) {
		return false
	}
	for i, c := range b.containers {
		if !c.equal(o.containers[i]) {
			return false
		}
	}
	return true
}

// ---------- container operations ----------

func (c *container) cardinality() int {
	if c.array != nil {
		return len(c.array)
	}
	return c.card
}

func (c *container) clone() *container {
	out := &container{key: c.key, card: c.card}
	if c.array != nil {
		out.array = append([]uint16(nil), c.array...)
	}
	if c.set != nil {
		out.set = append([]uint64(nil), c.set...)
	}
	if c.runs != nil {
		out.runs = append([]run(nil), c.runs...)
	}
	return out
}

func (c *container) contains(low uint16) bool {
	if c.set != nil {
		return c.set[low>>6]&(1<<(low&63)) != 0
	}
	if c.runs != nil {
		return runsContain(c.runs, low)
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	return i < len(c.array) && c.array[i] == low
}

func (c *container) add(low uint16) bool {
	if c.runs != nil {
		// Point writes thaw the frozen run representation, but a
		// membership hit costs only the binary search.
		if runsContain(c.runs, low) {
			return false
		}
		c.thaw()
	}
	if c.set != nil {
		w, m := low>>6, uint64(1)<<(low&63)
		if c.set[w]&m != 0 {
			return false
		}
		c.set[w] |= m
		c.card++
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	if i < len(c.array) && c.array[i] == low {
		return false
	}
	if len(c.array) >= arrayToBitmapThreshold {
		c.toSet()
		return c.add(low)
	}
	c.array = append(c.array, 0)
	copy(c.array[i+1:], c.array[i:])
	c.array[i] = low
	return true
}

func (c *container) remove(low uint16) bool {
	if c.runs != nil {
		if !runsContain(c.runs, low) {
			return false
		}
		c.thaw()
	}
	if c.set != nil {
		w, m := low>>6, uint64(1)<<(low&63)
		if c.set[w]&m == 0 {
			return false
		}
		c.set[w] &^= m
		c.card--
		if c.card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	if i >= len(c.array) || c.array[i] != low {
		return false
	}
	c.array = append(c.array[:i], c.array[i+1:]...)
	return true
}

func (c *container) toSet() {
	set := make([]uint64, wordsPerSet)
	for _, low := range c.array {
		set[low>>6] |= 1 << (low & 63)
	}
	c.card = len(c.array)
	c.set, c.array = set, nil
}

func (c *container) toArray() {
	arr := make([]uint16, 0, c.card)
	for w, word := range c.set {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w*64+t))
			word &^= 1 << t
		}
	}
	c.array, c.set, c.card = arr, nil, 0
}

func (c *container) min() uint16 {
	if c.array != nil {
		return c.array[0]
	}
	if c.runs != nil {
		return c.runs[0].start
	}
	for w, word := range c.set {
		if word != 0 {
			return uint16(w*64 + bits.TrailingZeros64(word))
		}
	}
	return 0
}

func (c *container) max() uint16 {
	if c.array != nil {
		return c.array[len(c.array)-1]
	}
	if c.runs != nil {
		return c.runs[len(c.runs)-1].last()
	}
	for w := len(c.set) - 1; w >= 0; w-- {
		if c.set[w] != 0 {
			return uint16(w*64 + 63 - bits.LeadingZeros64(c.set[w]))
		}
	}
	return 0
}

func (c *container) equal(o *container) bool {
	if c.key != o.key || c.cardinality() != o.cardinality() {
		return false
	}
	// Normalise both to iteration and compare.
	av, bv := c.values(), o.values()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

func (c *container) values() []uint16 {
	if c.array != nil {
		return c.array
	}
	out := make([]uint16, 0, c.card)
	c.forEachLow(func(low uint16) { out = append(out, low) })
	return out
}
