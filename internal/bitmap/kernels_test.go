package bitmap

import (
	"math/rand"
	"testing"
)

// randomBitmap draws n values below max; the density (n vs max) decides
// whether containers end up as arrays, sets or a mix.
func randomBitmap(rng *rand.Rand, n int, max uint64) *Bitmap {
	b := New()
	for i := 0; i < n; i++ {
		b.Add(rng.Uint64() % max)
	}
	return b
}

// kernelCases covers the representation matrix: array/array, set/set,
// mixed, skewed cardinalities, disjoint key ranges and empty operands.
func kernelCases(rng *rand.Rand) [][2]*Bitmap {
	return [][2]*Bitmap{
		{randomBitmap(rng, 100, 1<<14), randomBitmap(rng, 120, 1<<14)},     // array vs array
		{randomBitmap(rng, 60000, 1<<16), randomBitmap(rng, 60000, 1<<16)}, // set vs set
		{randomBitmap(rng, 40, 1<<16), randomBitmap(rng, 60000, 1<<16)},    // skewed: tiny array vs dense set
		{randomBitmap(rng, 30, 1<<15), randomBitmap(rng, 3000, 1<<15)},     // skewed arrays (galloping path)
		{randomBitmap(rng, 500, 1<<13), randomBitmap(rng, 500, 1<<20)},     // overlapping + disjoint keys
		{New(), randomBitmap(rng, 200, 1<<14)},                             // empty lhs
		{randomBitmap(rng, 200, 1<<14), New()},                             // empty rhs
		{randomBitmap(rng, 3000, 1<<12), randomBitmap(rng, 3000, 1<<12)},   // arrays whose union crosses the set threshold
		{randomBitmap(rng, 2500, 1<<16), randomBitmap(rng, 60000, 1<<16)},  // set shrinking below threshold on intersect
	}
}

func TestInPlaceOpsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i, tc := range kernelCases(rng) {
		a, b := tc[0], tc[1]
		if got, want := a.Clone().Union(b), Or(a, b); !got.Equal(want) {
			t.Fatalf("case %d: Union diverges from Or (got %d, want %d values)", i, got.Cardinality(), want.Cardinality())
		}
		if got, want := a.Clone().Intersect(b), And(a, b); !got.Equal(want) {
			t.Fatalf("case %d: Intersect diverges from And (got %d, want %d values)", i, got.Cardinality(), want.Cardinality())
		}
		if got, want := a.Clone().Difference(b), AndNot(a, b); !got.Equal(want) {
			t.Fatalf("case %d: Difference diverges from AndNot (got %d, want %d values)", i, got.Cardinality(), want.Cardinality())
		}
		// In-place ops must not corrupt the operand.
		snapshot := b.Clone()
		a.Clone().Union(b)
		a.Clone().Intersect(b)
		a.Clone().Difference(b)
		if !b.Equal(snapshot) {
			t.Fatalf("case %d: operand mutated by in-place ops", i)
		}
	}
}

func TestInPlaceSelfOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := randomBitmap(rng, 1000, 1<<16)
	want := b.Clone()
	if got := b.Union(b); !got.Equal(want) {
		t.Fatalf("b.Union(b) changed the set")
	}
	if got := b.Intersect(b); !got.Equal(want) {
		t.Fatalf("b.Intersect(b) changed the set")
	}
	if got := b.Difference(b); !got.IsEmpty() {
		t.Fatalf("b.Difference(b) = %d values, want empty", got.Cardinality())
	}
}

// TestUnionResultIndependentOfOperand guards the no-aliasing contract:
// after Union the receiver must own all its storage, so mutating the
// operand later cannot leak into it.
func TestUnionResultIndependentOfOperand(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomBitmap(rng, 50, 1<<14)
	o := randomBitmap(rng, 50, 1<<24) // mostly distinct container keys
	a.Union(o)
	want := a.Clone()
	o.ForEach(func(v uint64) bool { o.Remove(v); return false })
	o.Add(1 << 30)
	if !a.Equal(want) {
		t.Fatalf("receiver changed when operand was mutated after Union")
	}
}

func TestCardinalityKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i, tc := range kernelCases(rng) {
		a, b := tc[0], tc[1]
		if got, want := AndCardinality(a, b), And(a, b).Cardinality(); got != want {
			t.Fatalf("case %d: AndCardinality = %d, want %d", i, got, want)
		}
		if got, want := OrCardinality(a, b), Or(a, b).Cardinality(); got != want {
			t.Fatalf("case %d: OrCardinality = %d, want %d", i, got, want)
		}
	}
}

func TestGallopToBoundaries(t *testing.T) {
	b := []uint16{2, 4, 4, 8, 100, 5000}
	for _, tc := range []struct {
		from int
		v    uint16
		want int
	}{
		{0, 0, 0}, {0, 2, 0}, {0, 3, 1}, {0, 4, 1}, {0, 5, 3},
		{2, 4, 2}, {0, 101, 5}, {0, 5000, 5}, {0, 5001, 6}, {6, 1, 6},
	} {
		if got := gallopTo(b, tc.from, tc.v); got != tc.want {
			t.Fatalf("gallopTo(from=%d, v=%d) = %d, want %d", tc.from, tc.v, got, tc.want)
		}
	}
}

func TestOrManyMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inputs := []*Bitmap{
		randomBitmap(rng, 100, 1<<14),
		randomBitmap(rng, 60000, 1<<16),
		nil,
		New(),
		randomBitmap(rng, 10, 1<<24),
		randomBitmap(rng, 3000, 1<<12),
		randomBitmap(rng, 500, 1<<16),
	}
	want := New()
	for _, b := range inputs {
		if b != nil {
			want = Or(want, b)
		}
	}
	got := OrMany(inputs...)
	if !got.Equal(want) {
		t.Fatalf("OrMany = %d values, pairwise Or = %d values", got.Cardinality(), want.Cardinality())
	}
	// Result must not share storage with single-contributor inputs.
	got.Add(1 << 40)
	for i, b := range inputs {
		if b != nil && b.Contains(1<<40) {
			t.Fatalf("OrMany result aliases input %d", i)
		}
	}
	if out := OrMany(); !out.IsEmpty() {
		t.Fatalf("OrMany() = %v, want empty", out)
	}
	if out := OrMany(nil, New()); !out.IsEmpty() {
		t.Fatalf("OrMany(nil, empty) = %v, want empty", out)
	}
}

func TestMergeArraysInPlace(t *testing.T) {
	for _, tc := range []struct{ a, b, want []uint16 }{
		{[]uint16{1, 3, 5}, []uint16{2, 4, 6}, []uint16{1, 2, 3, 4, 5, 6}},
		{[]uint16{1, 3, 5}, []uint16{1, 3, 5}, []uint16{1, 3, 5}},
		{[]uint16{1, 2, 3}, []uint16{4, 5, 6}, []uint16{1, 2, 3, 4, 5, 6}},
		{[]uint16{4, 5, 6}, []uint16{1, 2, 3}, []uint16{1, 2, 3, 4, 5, 6}},
		{[]uint16{}, []uint16{1}, []uint16{1}},
		{[]uint16{1}, []uint16{}, []uint16{1}},
		{[]uint16{1, 5, 9}, []uint16{1, 2, 9, 10}, []uint16{1, 2, 5, 9, 10}},
	} {
		a := append([]uint16(nil), tc.a...)
		got := mergeArraysInPlace(a, tc.b)
		if len(got) != len(tc.want) {
			t.Fatalf("merge(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("merge(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		}
	}
}
