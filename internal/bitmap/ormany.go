package bitmap

import "math/bits"

// OrMany returns the union of any number of bitmaps as a new bitmap.
// Nil and empty inputs are skipped. Instead of folding pairwise (which
// re-materialises the accumulator once per input), it merges the input
// container lists with a binary min-heap of cursors keyed by container
// key: each round pops every cursor sharing the minimum key, gathers
// their containers, and assembles the output container with a single
// set-buffer allocation no matter how many inputs contribute. Rounds
// cost O(m log k) cursor movements for k inputs instead of the O(m·k)
// of a linear minimum scan — the difference the fan-in-64 benchmark
// measures, since wide BFS frontiers and shard merges routinely union
// dozens of rows. Inputs are never mutated and the result shares no
// storage with them.
func OrMany(inputs ...*Bitmap) *Bitmap {
	bs := make([]*Bitmap, 0, len(inputs))
	for _, b := range inputs {
		if b != nil && len(b.containers) > 0 {
			bs = append(bs, b)
		}
	}
	switch len(bs) {
	case 0:
		return New()
	case 1:
		return bs[0].Clone()
	}
	out := New()
	// Heap of one cursor per input, ordered by the key of the container
	// the cursor points at. Cursor movement is pop → advance → re-push,
	// so each container costs two O(log k) heap operations.
	h := make(orHeap, 0, len(bs))
	for k, b := range bs {
		h = append(h, orCursor{key: b.containers[0].key, input: k})
	}
	h.init()
	idx := make([]int, len(bs)) // per-input container position
	contrib := make([]*container, 0, len(bs))
	for len(h) > 0 {
		minKey := h[0].key
		contrib = contrib[:0]
		for len(h) > 0 && h[0].key == minKey {
			k := h[0].input
			b := bs[k]
			contrib = append(contrib, b.containers[idx[k]])
			idx[k]++
			if idx[k] < len(b.containers) {
				h[0].key = b.containers[idx[k]].key
				h.fix()
			} else {
				h.pop()
			}
		}
		out.containers = append(out.containers, orManyContainers(minKey, contrib))
	}
	return out
}

// orCursor is one input's position in the k-way merge: the key of the
// container it currently points at, and which input it belongs to.
type orCursor struct {
	key   uint64
	input int
}

// orHeap is a slice-backed binary min-heap of merge cursors, ordered by
// key with the input index as tie-break (purely for determinism of the
// contributor order; union is commutative either way).
type orHeap []orCursor

func (h orHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].input < h[j].input
}

func (h orHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// fix restores the heap after the root's key changed in place (the
// cursor advanced within its input).
func (h orHeap) fix() { h.down(0) }

// pop removes the root (its input is exhausted).
func (h *orHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
}

func (h orHeap) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// orManyContainers unions k containers sharing a key. With one
// contributor the container is cloned; otherwise every contributor is
// OR-ed into one freshly allocated set buffer and the population count
// runs once at the end (demoting to an array if the result is sparse).
func orManyContainers(key uint64, cs []*container) *container {
	if len(cs) == 1 {
		return cs[0].clone()
	}
	set := make([]uint64, wordsPerSet)
	for _, c := range cs {
		if c.set != nil {
			for w, word := range c.set {
				set[w] |= word
			}
			continue
		}
		if c.runs != nil {
			for _, r := range c.runs {
				orWordRange(set, r.start, r.last())
			}
			continue
		}
		for _, low := range c.array {
			set[low>>6] |= 1 << (low & 63)
		}
	}
	card := 0
	for _, w := range set {
		card += bits.OnesCount64(w)
	}
	out := &container{key: key, set: set, card: card}
	if card < arrayToBitmapThreshold/2 {
		out.toArray()
	}
	return out
}
