package bitmap

import "math/bits"

// OrMany returns the union of any number of bitmaps as a new bitmap.
// Nil and empty inputs are skipped. Instead of folding pairwise (which
// re-materialises the accumulator once per input), it runs a tournament
// over container keys: each round finds the minimum key among the input
// cursors, gathers every container with that key, and assembles the
// output container with a single set-buffer allocation no matter how
// many inputs contribute. Inputs are never mutated and the result
// shares no storage with them.
func OrMany(inputs ...*Bitmap) *Bitmap {
	bs := make([]*Bitmap, 0, len(inputs))
	for _, b := range inputs {
		if b != nil && len(b.containers) > 0 {
			bs = append(bs, b)
		}
	}
	switch len(bs) {
	case 0:
		return New()
	case 1:
		return bs[0].Clone()
	}
	out := New()
	idx := make([]int, len(bs)) // per-input container cursor
	contrib := make([]*container, 0, len(bs))
	for {
		minKey, found := ^uint64(0), false
		for k, b := range bs {
			if idx[k] < len(b.containers) {
				if key := b.containers[idx[k]].key; !found || key < minKey {
					minKey, found = key, true
				}
			}
		}
		if !found {
			return out
		}
		contrib = contrib[:0]
		for k, b := range bs {
			if idx[k] < len(b.containers) && b.containers[idx[k]].key == minKey {
				contrib = append(contrib, b.containers[idx[k]])
				idx[k]++
			}
		}
		out.containers = append(out.containers, orManyContainers(minKey, contrib))
	}
}

// orManyContainers unions k containers sharing a key. With one
// contributor the container is cloned; otherwise every contributor is
// OR-ed into one freshly allocated set buffer and the population count
// runs once at the end (demoting to an array if the result is sparse).
func orManyContainers(key uint64, cs []*container) *container {
	if len(cs) == 1 {
		return cs[0].clone()
	}
	set := make([]uint64, wordsPerSet)
	for _, c := range cs {
		if c.set != nil {
			for w, word := range c.set {
				set[w] |= word
			}
			continue
		}
		for _, low := range c.array {
			set[low>>6] |= 1 << (low & 63)
		}
	}
	card := 0
	for _, w := range set {
		card += bits.OnesCount64(w)
	}
	out := &container{key: key, set: set, card: card}
	if card < arrayToBitmapThreshold/2 {
		out.toArray()
	}
	return out
}
