package bitmap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization format (little-endian):
//
//	magic      uint32  'T','B','M','1' (v1) or 'T','B','M','2' (v2)
//	nContainer uint32
//	per container:
//	  key   uint64
//	  mode  uint8   0 = array, 1 = bitset, 2 = run list (v2 only)
//	  card  uint32  array: cardinality | bitset: cardinality | runs: run count
//	  array: card × uint16 | bitset: 1024 × uint64 | runs: card × (start,length uint16)
//
// WriteTo emits v1 — byte-identical to the historical format — unless
// at least one container is run-encoded; ReadFrom accepts both, so v1
// images written before run compression existed keep loading.
const (
	ioMagic   = 0x314d4254 // "TBM1"
	ioMagicV2 = 0x324d4254 // "TBM2"
)

// WriteTo serialises the bitmap. It returns the number of bytes written.
func (b *Bitmap) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	magic := uint32(ioMagic)
	if b.HasRuns() {
		magic = ioMagicV2
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(b.containers)))
	if _, err := cw.Write(hdr); err != nil {
		return cw.n, err
	}
	for _, c := range b.containers {
		chdr := make([]byte, 13)
		binary.LittleEndian.PutUint64(chdr[0:8], c.key)
		switch {
		case c.set != nil:
			chdr[8] = 1
			binary.LittleEndian.PutUint32(chdr[9:13], uint32(c.card))
		case c.runs != nil:
			chdr[8] = 2
			binary.LittleEndian.PutUint32(chdr[9:13], uint32(len(c.runs)))
		default:
			binary.LittleEndian.PutUint32(chdr[9:13], uint32(len(c.array)))
		}
		if _, err := cw.Write(chdr); err != nil {
			return cw.n, err
		}
		switch {
		case c.set != nil:
			buf := make([]byte, 8*wordsPerSet)
			for i, word := range c.set {
				binary.LittleEndian.PutUint64(buf[i*8:], word)
			}
			if _, err := cw.Write(buf); err != nil {
				return cw.n, err
			}
		case c.runs != nil:
			buf := make([]byte, 4*len(c.runs))
			for i, r := range c.runs {
				binary.LittleEndian.PutUint16(buf[i*4:], r.start)
				binary.LittleEndian.PutUint16(buf[i*4+2:], r.length)
			}
			if _, err := cw.Write(buf); err != nil {
				return cw.n, err
			}
		default:
			buf := make([]byte, 2*len(c.array))
			for i, low := range c.array {
				binary.LittleEndian.PutUint16(buf[i*2:], low)
			}
			if _, err := cw.Write(buf); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// ReadFrom replaces the bitmap contents with a serialised image.
func (b *Bitmap) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(cr, hdr); err != nil {
		return cr.n, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != ioMagic && m != ioMagicV2 {
		return cr.n, fmt.Errorf("bitmap: bad magic %#x", m)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	containers := make([]*container, 0, n)
	for i := 0; i < n; i++ {
		chdr := make([]byte, 13)
		if _, err := io.ReadFull(cr, chdr); err != nil {
			return cr.n, err
		}
		c := &container{key: binary.LittleEndian.Uint64(chdr[0:8])}
		card := int(binary.LittleEndian.Uint32(chdr[9:13]))
		switch chdr[8] {
		case 1:
			buf := make([]byte, 8*wordsPerSet)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return cr.n, err
			}
			c.set = make([]uint64, wordsPerSet)
			for w := range c.set {
				c.set[w] = binary.LittleEndian.Uint64(buf[w*8:])
			}
			c.card = card
		case 2:
			buf := make([]byte, 4*card)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return cr.n, err
			}
			c.runs = make([]run, card)
			for j := range c.runs {
				c.runs[j].start = binary.LittleEndian.Uint16(buf[j*4:])
				c.runs[j].length = binary.LittleEndian.Uint16(buf[j*4+2:])
				c.card += int(c.runs[j].length) + 1
			}
		case 0:
			buf := make([]byte, 2*card)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return cr.n, err
			}
			c.array = make([]uint16, card)
			for j := range c.array {
				c.array[j] = binary.LittleEndian.Uint16(buf[j*2:])
			}
		default:
			return cr.n, fmt.Errorf("bitmap: unknown container mode %d", chdr[8])
		}
		containers = append(containers, c)
	}
	b.containers = containers
	return cr.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
