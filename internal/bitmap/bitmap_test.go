package bitmap

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	b := New()
	if !b.IsEmpty() {
		t.Fatal("new bitmap not empty")
	}
	if !b.Add(42) {
		t.Error("Add(42) = false on empty set")
	}
	if b.Add(42) {
		t.Error("Add(42) = true when already present")
	}
	if !b.Contains(42) || b.Contains(43) {
		t.Error("Contains wrong after Add")
	}
	if b.Cardinality() != 1 {
		t.Errorf("Cardinality = %d, want 1", b.Cardinality())
	}
	if !b.Remove(42) {
		t.Error("Remove(42) = false")
	}
	if b.Remove(42) {
		t.Error("Remove(42) = true when absent")
	}
	if !b.IsEmpty() {
		t.Error("not empty after removing only element")
	}
}

func TestCrossContainerValues(t *testing.T) {
	// Values spanning multiple 2^16 containers.
	vals := []uint64{0, 1, 65535, 65536, 65537, 1 << 20, 1<<32 + 7, 1 << 40}
	b := Of(vals...)
	if b.Cardinality() != len(vals) {
		t.Fatalf("Cardinality = %d, want %d", b.Cardinality(), len(vals))
	}
	got := b.Slice()
	for i, v := range vals {
		if got[i] != v {
			t.Errorf("Slice[%d] = %d, want %d", i, got[i], v)
		}
	}
	if mn, ok := b.Min(); !ok || mn != 0 {
		t.Errorf("Min = %d,%v", mn, ok)
	}
	if mx, ok := b.Max(); !ok || mx != 1<<40 {
		t.Errorf("Max = %d,%v", mx, ok)
	}
}

func TestArrayToBitmapPromotion(t *testing.T) {
	b := New()
	// Force a container through the array→bitset threshold and back.
	for i := 0; i < arrayToBitmapThreshold+100; i++ {
		b.Add(uint64(i))
	}
	if b.containers[0].set == nil {
		t.Fatal("container not promoted to bitset above threshold")
	}
	if b.Cardinality() != arrayToBitmapThreshold+100 {
		t.Fatalf("cardinality %d", b.Cardinality())
	}
	for i := 0; i < arrayToBitmapThreshold+100; i++ {
		if !b.Contains(uint64(i)) {
			t.Fatalf("missing %d after promotion", i)
		}
	}
	// Remove most values; container should demote to array.
	for i := 100; i < arrayToBitmapThreshold+100; i++ {
		b.Remove(uint64(i))
	}
	if b.containers[0].array == nil {
		t.Fatal("container not demoted to array after removals")
	}
	if b.Cardinality() != 100 {
		t.Fatalf("cardinality after removals = %d", b.Cardinality())
	}
}

func TestMinMaxOnBitsetContainer(t *testing.T) {
	b := New()
	for i := 5000; i < 5000+arrayToBitmapThreshold+1; i++ {
		b.Add(uint64(i))
	}
	if mn, _ := b.Min(); mn != 5000 {
		t.Errorf("Min = %d", mn)
	}
	if mx, _ := b.Max(); mx != uint64(5000+arrayToBitmapThreshold) {
		t.Errorf("Max = %d", mx)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	b := Of(1, 2, 3, 4, 5)
	var seen []uint64
	b.ForEach(func(v uint64) bool {
		seen = append(seen, v)
		return v < 3
	})
	if len(seen) != 3 || seen[2] != 3 {
		t.Errorf("seen = %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2, 3)
	b := a.Clone()
	b.Add(4)
	a.Remove(1)
	if a.Contains(4) || !b.Contains(1) {
		t.Error("Clone aliases original")
	}
}

// model-based randomized test against map[uint64]bool
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := New()
	model := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(100000))
		switch rng.Intn(3) {
		case 0:
			b.Add(v)
			model[v] = true
		case 1:
			b.Remove(v)
			delete(model, v)
		case 2:
			if b.Contains(v) != model[v] {
				t.Fatalf("Contains(%d) mismatch at step %d", v, i)
			}
		}
	}
	if b.Cardinality() != len(model) {
		t.Fatalf("cardinality %d, model %d", b.Cardinality(), len(model))
	}
	want := make([]uint64, 0, len(model))
	for v := range model {
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := b.Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func fromSlice(vals []uint32) *Bitmap {
	b := New()
	for _, v := range vals {
		b.Add(uint64(v))
	}
	return b
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}

	// |A ∩ B| + |A − B| = |A|
	partition := func(as, bs []uint32) bool {
		a, b := fromSlice(as), fromSlice(bs)
		return AndCardinality(a, b)+AndNot(a, b).Cardinality() == a.Cardinality()
	}
	if err := quick.Check(partition, cfg); err != nil {
		t.Error("partition law:", err)
	}

	// A ∪ B = B ∪ A and A ∩ B = B ∩ A
	commute := func(as, bs []uint32) bool {
		a, b := fromSlice(as), fromSlice(bs)
		return Or(a, b).Equal(Or(b, a)) && And(a, b).Equal(And(b, a))
	}
	if err := quick.Check(commute, cfg); err != nil {
		t.Error("commutativity:", err)
	}

	// (A − B) ∪ (A ∩ B) = A
	recompose := func(as, bs []uint32) bool {
		a, b := fromSlice(as), fromSlice(bs)
		return Or(AndNot(a, b), And(a, b)).Equal(a)
	}
	if err := quick.Check(recompose, cfg); err != nil {
		t.Error("recomposition:", err)
	}

	// A ∩ (B ∪ C) = (A ∩ B) ∪ (A ∩ C)
	distribute := func(as, bs, cs []uint32) bool {
		a, b, c := fromSlice(as), fromSlice(bs), fromSlice(cs)
		return And(a, Or(b, c)).Equal(Or(And(a, b), And(a, c)))
	}
	if err := quick.Check(distribute, cfg); err != nil {
		t.Error("distributivity:", err)
	}

	// Intersects ⇔ AndCardinality > 0
	intersects := func(as, bs []uint32) bool {
		a, b := fromSlice(as), fromSlice(bs)
		return Intersects(a, b) == (AndCardinality(a, b) > 0)
	}
	if err := quick.Check(intersects, cfg); err != nil {
		t.Error("intersects:", err)
	}
}

func TestMutatingSetOps(t *testing.T) {
	a := Of(1, 2, 3)
	a.Union(Of(3, 4))
	if a.Cardinality() != 4 || !a.Contains(4) {
		t.Errorf("Union: %v", a)
	}
	a.Intersect(Of(2, 3, 4, 5))
	if a.Cardinality() != 3 || a.Contains(1) {
		t.Errorf("Intersect: %v", a)
	}
	a.Difference(Of(4))
	if a.Cardinality() != 2 || a.Contains(4) {
		t.Errorf("Difference: %v", a)
	}
}

func TestLargeDenseOps(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 3*containerSize; i += 2 {
		a.Add(uint64(i))
	}
	for i := 0; i < 3*containerSize; i += 3 {
		b.Add(uint64(i))
	}
	and := And(a, b)
	want := 0
	for i := 0; i < 3*containerSize; i += 6 {
		want++
		if !and.Contains(uint64(i)) {
			t.Fatalf("And missing %d", i)
		}
	}
	if and.Cardinality() != want {
		t.Errorf("And cardinality = %d, want %d", and.Cardinality(), want)
	}
	or := Or(a, b)
	if got := or.Cardinality(); got != a.Cardinality()+b.Cardinality()-want {
		t.Errorf("Or cardinality = %d", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New()
	for i := 0; i < 10000; i++ {
		b.Add(uint64(rng.Intn(1 << 22)))
	}
	// Force a dense container too.
	for i := 0; i < arrayToBitmapThreshold+10; i++ {
		b.Add(uint64(1<<30 + i))
	}
	var buf bytes.Buffer
	n, err := b.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	var c Bitmap
	if _, err := c.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(&c) {
		t.Error("round-trip mismatch")
	}
}

func TestReadFromBadMagic(t *testing.T) {
	var c Bitmap
	if _, err := c.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0})); err == nil {
		t.Error("expected error on bad magic")
	}
}

func TestStringTruncates(t *testing.T) {
	b := New()
	for i := 0; i < 100; i++ {
		b.Add(uint64(i))
	}
	s := b.String()
	if len(s) == 0 || s[0] != '{' {
		t.Errorf("String() = %q", s)
	}
	if !bytes.Contains([]byte(s), []byte("...")) {
		t.Errorf("String() should truncate: %q", s)
	}
}

func TestEqual(t *testing.T) {
	if !Of(1, 2).Equal(Of(2, 1)) {
		t.Error("order should not matter")
	}
	if Of(1).Equal(Of(1, 2)) {
		t.Error("different cardinalities equal")
	}
	if Of(1).Equal(Of(2)) {
		t.Error("different values equal")
	}
	// Same values, one container dense and one sparse, must be equal.
	a, b := New(), New()
	for i := 0; i <= arrayToBitmapThreshold; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i))
	}
	b.Add(99999999)
	b.Remove(99999999) // b's first container went through same path; force different layout:
	c := a.Clone()
	for i := arrayToBitmapThreshold; i > 0; i-- {
		c.Remove(uint64(i))
		c.Add(uint64(i))
	}
	if !a.Equal(c) {
		t.Error("layout difference broke Equal")
	}
}

func BenchmarkAdd(b *testing.B) {
	bm := New()
	for i := 0; i < b.N; i++ {
		bm.Add(uint64(i * 7 % (1 << 24)))
	}
}

func BenchmarkAndDense(b *testing.B) {
	x, y := New(), New()
	for i := 0; i < 1<<20; i += 2 {
		x.Add(uint64(i))
	}
	for i := 0; i < 1<<20; i += 3 {
		y.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(x, y)
	}
}
