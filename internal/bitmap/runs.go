package bitmap

import (
	"math/bits"
	"sort"
)

// Run-length containers, the third container kind (Chambi et al.,
// "Better bitmap performance with Roaring bitmaps"). A run container
// stores a sorted list of disjoint, non-adjacent intervals; the dense
// contiguous OID ranges that bulk loading produces — a freshly
// allocated node extent is one interval — collapse from thousands of
// array entries or a full 8 KiB bitset to four bytes per interval, and
// the set-algebra kernels walk intervals in O(runs) instead of
// O(cardinality).
//
// Representation choice is by serialized size (the same model io.go
// uses): 2·card bytes for an array, 4·runs bytes for a run list,
// 8 KiB for a bitset. Optimize applies the model to every container;
// Thaw undoes it (for writing legacy v1 images). Both are canonical —
// the chosen representation depends only on the set's contents, never
// on construction history — so byte-identical image comparisons across
// worker counts keep holding.

// run is one maximal interval of present values inside a container:
// [start, start+length]. length is the interval's cardinality minus
// one, so a full container (65536 values) is representable.
type run struct {
	start, length uint16
}

// last returns the inclusive upper bound of the run.
func (r run) last() uint16 { return r.start + r.length }

const (
	bytesPerArrayEntry = 2
	bytesPerRun        = 4
	bytesPerSetPayload = 8 * wordsPerSet
)

// Optimize converts every container to its smallest serialized
// representation (array ↔ run ↔ bitset) and returns b. The choice is a
// pure function of each container's contents: a run list wins only
// when strictly smaller than both alternatives, an array beats a
// bitset on ties. Callers invoke it after bulk builds and before
// Save-style serialization; point mutations on an optimized bitmap
// remain valid (run containers thaw on first write).
func (b *Bitmap) Optimize() *Bitmap {
	for _, c := range b.containers {
		c.optimize()
	}
	return b
}

// Thaw converts every run container back to the array/bitset
// representation (array when cardinality ≤ 4096, bitset otherwise),
// producing a bitmap that serializes in the legacy v1 format.
func (b *Bitmap) Thaw() *Bitmap {
	for _, c := range b.containers {
		c.thaw()
	}
	return b
}

// HasRuns reports whether any container uses the run representation —
// equivalently, whether WriteTo would emit the v2 format.
func (b *Bitmap) HasRuns() bool {
	for _, c := range b.containers {
		if c.runs != nil {
			return true
		}
	}
	return false
}

// ContainerCounts returns the number of containers held in each
// representation (arrays, run lists, bitsets).
func (b *Bitmap) ContainerCounts() (arrays, runs, bitsets int) {
	for _, c := range b.containers {
		switch {
		case c.array != nil:
			arrays++
		case c.runs != nil:
			runs++
		default:
			bitsets++
		}
	}
	return arrays, runs, bitsets
}

// containerStructBytes approximates the heap footprint of one
// container value: the struct itself (key + three slice headers +
// card, rounded up to the allocator's size class) plus the pointer to
// it in the container slice.
const containerStructBytes = 96 + 8

// MemBytes estimates the heap bytes held by the bitmap: container
// payloads at their capacities plus per-container struct overhead.
func (b *Bitmap) MemBytes() int {
	n := 24 + 8*cap(b.containers)
	for _, c := range b.containers {
		n += containerStructBytes
		n += bytesPerArrayEntry*cap(c.array) + 8*cap(c.set) + bytesPerRun*cap(c.runs)
	}
	return n
}

// ---------- per-container representation changes ----------

// optimize re-represents the container at its minimum serialized size.
func (c *container) optimize() {
	card := c.cardinality()
	if card == 0 {
		return // empty containers are dropped at the bitmap level
	}
	nr := c.numRuns()
	runBytes := bytesPerRun * nr
	arrBytes := bytesPerArrayEntry * card
	if runBytes < bytesPerSetPayload && (card > arrayToBitmapThreshold || runBytes < arrBytes) {
		c.toRuns(nr)
		return
	}
	c.thaw() // canonical array/bitset by cardinality
	if c.set != nil && card <= arrayToBitmapThreshold {
		c.toArray()
	}
}

// thaw converts a run container back to array (card ≤ 4096) or bitset.
// Non-run containers are untouched.
func (c *container) thaw() {
	if c.runs == nil {
		return
	}
	if c.card > arrayToBitmapThreshold {
		set := make([]uint64, wordsPerSet)
		for _, r := range c.runs {
			orWordRange(set, r.start, r.last())
		}
		c.set, c.runs = set, nil
		return
	}
	arr := make([]uint16, 0, c.card)
	for _, r := range c.runs {
		v := r.start
		for {
			arr = append(arr, v)
			if v == r.last() {
				break
			}
			v++
		}
	}
	c.array, c.runs, c.card = arr, nil, 0
}

// toRuns re-represents the container as a run list of nr runs.
func (c *container) toRuns(nr int) {
	if c.runs != nil {
		return
	}
	card := c.cardinality()
	rs := make([]run, 0, nr)
	prev := -2
	var start int
	c.forEachLow(func(low uint16) {
		v := int(low)
		if v == prev+1 {
			prev = v
			return
		}
		if prev >= 0 {
			rs = append(rs, run{uint16(start), uint16(prev - start)})
		}
		start, prev = v, v
	})
	if prev >= 0 {
		rs = append(rs, run{uint16(start), uint16(prev - start)})
	}
	c.runs, c.array, c.set, c.card = rs, nil, nil, card
}

// numRuns counts the maximal intervals of the container's contents
// without materializing them.
func (c *container) numRuns() int {
	switch {
	case c.runs != nil:
		return len(c.runs)
	case c.array != nil:
		if len(c.array) == 0 {
			return 0
		}
		n := 1
		for i := 1; i < len(c.array); i++ {
			if c.array[i] != c.array[i-1]+1 {
				n++
			}
		}
		return n
	default:
		// A run starts at every set bit whose predecessor is clear;
		// carry the previous word's top bit across the boundary.
		n := 0
		var carry uint64
		for _, w := range c.set {
			n += bits.OnesCount64(w &^ ((w << 1) | carry))
			carry = w >> 63
		}
		return n
	}
}

// forEachLow visits every present low half in ascending order.
func (c *container) forEachLow(fn func(uint16)) {
	switch {
	case c.array != nil:
		for _, low := range c.array {
			fn(low)
		}
	case c.runs != nil:
		for _, r := range c.runs {
			v := r.start
			for {
				fn(v)
				if v == r.last() {
					break
				}
				v++
			}
		}
	default:
		for w, word := range c.set {
			for word != 0 {
				t := bits.TrailingZeros64(word)
				fn(uint16(w*64 + t))
				word &^= 1 << t
			}
		}
	}
}

// runsContain reports membership via binary search on the run list.
func runsContain(rs []run, low uint16) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].start > low })
	return i > 0 && low <= rs[i-1].last()
}

// insertRun merges the interval [from, to] into the container's run
// list, coalescing overlapping and adjacent runs, and returns how many
// values were newly added. c.card is not touched; callers add the
// return value.
func (c *container) insertRun(from, to uint16) int {
	rs := c.runs
	f, t := int(from), int(to)
	// First run that overlaps or is left-adjacent: its end+1 ≥ from.
	i := sort.Search(len(rs), func(k int) bool { return int(rs[k].last())+1 >= f })
	lo, hi, old := f, t, 0
	j := i
	for j < len(rs) && int(rs[j].start) <= t+1 {
		if s := int(rs[j].start); s < lo {
			lo = s
		}
		if e := int(rs[j].last()); e > hi {
			hi = e
		}
		old += int(rs[j].length) + 1
		j++
	}
	merged := run{uint16(lo), uint16(hi - lo)}
	switch {
	case j == i: // no overlap: insert at i
		rs = append(rs, run{})
		copy(rs[i+1:], rs[i:])
		rs[i] = merged
	default: // absorb runs [i, j)
		rs[i] = merged
		rs = append(rs[:i+1], rs[j:]...)
	}
	c.runs = rs
	return (hi - lo + 1) - old
}

// clearWordRange clears bits [from, to] in a bitset container
// word-at-a-time and returns how many were previously set.
func clearWordRange(set []uint64, from, to uint16) (removed int) {
	fw, lw := int(from>>6), int(to>>6)
	for w := fw; w <= lw; w++ {
		mask := ^uint64(0)
		if w == fw {
			mask &= ^uint64(0) << (from & 63)
		}
		if w == lw {
			mask &= ^uint64(0) >> (63 - to&63)
		}
		removed += bits.OnesCount64(set[w] & mask)
		set[w] &^= mask
	}
	return removed
}
