package bitmap

import (
	"math/rand"
	"testing"
)

func TestAddRangeMatchesAddLoop(t *testing.T) {
	cases := []struct{ lo, hi uint64 }{
		{0, 0},
		{5, 5},
		{10, 300},
		{0, containerSize - 1},             // exactly one full container
		{100, containerSize + 100},         // spans a boundary
		{containerSize - 1, containerSize}, // two-element boundary straddle
		{3, 3*containerSize + 17},          // several full containers inside
		{7, 7 + arrayToBitmapThreshold},    // crosses the array→set threshold
		{1 << 40, 1<<40 + 100_000},         // high keys (OID-like values)
	}
	for _, tc := range cases {
		fast := New()
		fast.AddRange(tc.lo, tc.hi)
		slow := New()
		for v := tc.lo; ; v++ {
			slow.Add(v)
			if v == tc.hi {
				break
			}
		}
		if !fast.Equal(slow) {
			t.Errorf("AddRange(%d, %d) differs from Add loop", tc.lo, tc.hi)
		}
		if fast.Cardinality() != int(tc.hi-tc.lo+1) {
			t.Errorf("AddRange(%d, %d) cardinality = %d", tc.lo, tc.hi, fast.Cardinality())
		}
	}
	// Empty interval is a no-op.
	b := Of(1, 2, 3)
	b.AddRange(10, 9)
	if b.Cardinality() != 3 {
		t.Error("inverted range mutated the set")
	}
}

func TestAddRangeOntoExisting(t *testing.T) {
	for _, preset := range [][]uint64{
		{1, 50, 200, 70000},               // array containers
		rangeSlice(0, arrayToBitmapThreshold + 10), // a set container
	} {
		fast := Of(preset...)
		slow := Of(preset...)
		fast.AddRange(40, 66000)
		for v := uint64(40); v <= 66000; v++ {
			slow.Add(v)
		}
		if !fast.Equal(slow) {
			t.Errorf("AddRange over preset %v diverged", preset[:min(4, len(preset))])
		}
	}
}

func TestAddSortedMatchesAddLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, 0, 50_000)
	v := uint64(0)
	for len(vals) < cap(vals) {
		v += uint64(rng.Intn(40)) // duplicates (step 0) and gaps
		vals = append(vals, v)
	}
	fast := New()
	fast.AddSorted(vals)
	slow := New()
	for _, x := range vals {
		slow.Add(x)
	}
	if !fast.Equal(slow) {
		t.Fatal("AddSorted differs from Add loop")
	}
	// Merging a second overlapping run into existing containers.
	fast.AddSorted(vals[10_000:30_000])
	if !fast.Equal(slow) {
		t.Fatal("re-adding an overlapping sorted run changed the set")
	}
	// Dense run that converts array containers to sets.
	fast2 := Of(3, 99, 70001)
	slow2 := Of(3, 99, 70001)
	run := rangeSlice(0, 5000)
	fast2.AddSorted(run)
	for _, x := range run {
		slow2.Add(x)
	}
	if !fast2.Equal(slow2) {
		t.Fatal("dense AddSorted over array container diverged")
	}
}

func rangeSlice(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func BenchmarkAddRangeVsLoop(b *testing.B) {
	const n = 1_000_000
	b.Run("AddRange", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm := New()
			bm.AddRange(1, n)
		}
	})
	b.Run("AddLoop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm := New()
			for v := uint64(1); v <= n; v++ {
				bm.Add(v)
			}
		}
	})
}

func BenchmarkAddSortedVsLoop(b *testing.B) {
	vals := make([]uint64, 500_000)
	v := uint64(0)
	for i := range vals {
		v += 3
		vals[i] = v
	}
	b.Run("AddSorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm := New()
			bm.AddSorted(vals)
		}
	})
	b.Run("AddLoop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm := New()
			for _, x := range vals {
				bm.Add(x)
			}
		}
	})
}
