package bitmap

import (
	"math/bits"
	"sort"
)

// Bulk construction kernels for the import pipeline. The loaders insert
// long ascending runs — consecutive OIDs of a freshly created node or
// edge batch, and per-value posting runs — so building whole containers
// at once (and unioning word-at-a-time into existing ones) replaces
// millions of per-object Add calls, each of which pays a container
// binary search and possibly an insertion memmove.

// AddRange inserts every value in the closed interval [lo, hi],
// constructing dense containers directly instead of adding one value at
// a time.
func (b *Bitmap) AddRange(lo, hi uint64) {
	if hi < lo {
		return
	}
	firstKey := lo >> containerBits
	lastKey := hi >> containerBits
	for key := firstKey; ; key++ {
		from, to := uint16(0), uint16(containerSize-1)
		if key == firstKey {
			from = uint16(lo & (containerSize - 1))
		}
		if key == lastKey {
			to = uint16(hi & (containerSize - 1))
		}
		b.addContainerRange(key, from, to)
		if key == lastKey {
			return
		}
	}
}

// addContainerRange merges the contiguous run [from, to] into the
// container with the given key, creating it if absent. New containers
// and containers already in run form stay run-encoded — the interval
// is one 4-byte run, not up to 4096 array inserts or an 8 KiB bitset —
// which is what keeps bulk-loaded extent bitmaps O(extents) in memory.
func (b *Bitmap) addContainerRange(key uint64, from, to uint16) {
	n := int(to) - int(from) + 1
	i, ok := b.findContainer(key)
	if !ok {
		c := &container{key: key, runs: []run{{from, to - from}}, card: n}
		b.insertContainer(i, c)
		return
	}
	c := b.containers[i]
	if c.runs != nil {
		c.card += c.insertRun(from, to)
		return
	}
	if c.array != nil && len(c.array)+n > arrayToBitmapThreshold {
		c.toSet()
	}
	if c.set != nil {
		c.card += orWordRange(c.set, from, to)
		return
	}
	// Merge the run into the sorted array: everything already inside
	// [from, to] is subsumed by the run.
	loI := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= from })
	hiI := sort.Search(len(c.array), func(i int) bool { return c.array[i] > to })
	out := make([]uint16, 0, loI+n+len(c.array)-hiI)
	out = append(out, c.array[:loI]...)
	for v := from; ; v++ {
		out = append(out, v)
		if v == to {
			break
		}
	}
	out = append(out, c.array[hiI:]...)
	c.array = out
}

// orWordRange sets bits [from, to] in a bitset container word-at-a-time
// and returns how many were newly set.
func orWordRange(set []uint64, from, to uint16) (added int) {
	fw, lw := int(from>>6), int(to>>6)
	for w := fw; w <= lw; w++ {
		mask := ^uint64(0)
		if w == fw {
			mask &= ^uint64(0) << (from & 63)
		}
		if w == lw {
			mask &= ^uint64(0) >> (63 - to&63)
		}
		nw := set[w] | mask
		added += bits.OnesCount64(nw ^ set[w])
		set[w] = nw
	}
	return added
}

// AddSorted unions a non-decreasing run of values into the set,
// processing one container's worth at a time. Panics are avoided for
// unsorted input only by producing a wrong set; callers own the
// ordering invariant (the loaders emit batches in OID order).
func (b *Bitmap) AddSorted(vals []uint64) {
	for start := 0; start < len(vals); {
		key := vals[start] >> containerBits
		end := start + 1
		for end < len(vals) && vals[end]>>containerBits == key {
			end++
		}
		b.addContainerSorted(key, vals[start:end])
		start = end
	}
}

// addContainerSorted merges a non-decreasing run of same-key values.
// When the target container is already a bitset the values word-OR
// straight in — a single pass with no intermediate allocation, the
// steady state of a large bulk load (pinned by BenchmarkAddSortedSet).
func (b *Bitmap) addContainerSorted(key uint64, vals []uint64) {
	i, ok := b.findContainer(key)
	if ok {
		c := b.containers[i]
		if c.runs != nil {
			c.thaw()
		}
		if c.set != nil {
			for _, v := range vals {
				low := uint16(v & (containerSize - 1))
				w, m := low>>6, uint64(1)<<(low&63)
				if c.set[w]&m == 0 {
					c.set[w] |= m
					c.card++
				}
			}
			return
		}
	}
	// Array and fresh-container paths need the deduplicated low halves.
	lows := make([]uint16, 0, len(vals))
	for _, v := range vals {
		low := uint16(v & (containerSize - 1))
		if n := len(lows); n == 0 || lows[n-1] != low {
			lows = append(lows, low)
		}
	}
	if !ok {
		c := &container{key: key}
		if len(lows) > arrayToBitmapThreshold {
			c.set = make([]uint64, wordsPerSet)
			for _, low := range lows {
				c.set[low>>6] |= 1 << (low & 63)
			}
			c.card = len(lows)
		} else {
			c.array = lows
		}
		b.insertContainer(i, c)
		return
	}
	c := b.containers[i]
	if len(c.array)+len(lows) > arrayToBitmapThreshold {
		c.toSet()
		for _, low := range lows {
			w, m := low>>6, uint64(1)<<(low&63)
			if c.set[w]&m == 0 {
				c.set[w] |= m
				c.card++
			}
		}
		return
	}
	c.array = mergeSortedU16(c.array, lows)
}

// mergeSortedU16 merges two sorted, deduplicated slices into one.
func mergeSortedU16(a, b []uint16) []uint16 {
	out := make([]uint16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// insertContainer places c at index i, keeping the key order.
func (b *Bitmap) insertContainer(i int, c *container) {
	b.containers = append(b.containers, nil)
	copy(b.containers[i+1:], b.containers[i:])
	b.containers[i] = c
}
