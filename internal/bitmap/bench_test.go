package bitmap

import (
	"math/rand"
	"testing"
)

// Benchmark fixtures: array/array (sparse), set/set (dense), skewed
// (tiny probe vs dense set — the shape of "is this candidate in the
// 2-hop frontier"), and an OrMany fan-in like a sharded BFS level
// merge.

func benchPair(n1, n2 int, max uint64) (*Bitmap, *Bitmap) {
	rng := rand.New(rand.NewSource(1))
	return randomBitmap(rng, n1, max), randomBitmap(rng, n2, max)
}

func BenchmarkIntersectArrayArray(b *testing.B) {
	x, y := benchPair(1000, 1200, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Intersect(y)
	}
}

func BenchmarkAndArrayArray(b *testing.B) { // allocating baseline for comparison
	x, y := benchPair(1000, 1200, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(x, y)
	}
}

func BenchmarkIntersectSetSet(b *testing.B) {
	x, y := benchPair(60000, 60000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Intersect(y)
	}
}

func BenchmarkIntersectSkewedGalloping(b *testing.B) {
	x, y := benchPair(64, 3500, 1<<13) // arrays at ~55x skew: galloping path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Intersect(y)
	}
}

func BenchmarkUnionArrayArray(b *testing.B) {
	x, y := benchPair(1000, 1200, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Union(y)
	}
}

func BenchmarkOrArrayArray(b *testing.B) { // allocating baseline for comparison
	x, y := benchPair(1000, 1200, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Or(x, y)
	}
}

func BenchmarkUnionSetSet(b *testing.B) {
	x, y := benchPair(60000, 60000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Union(y)
	}
}

func BenchmarkDifferenceArrayArray(b *testing.B) {
	x, y := benchPair(1000, 1200, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Difference(y)
	}
}

func BenchmarkAndCardinality(b *testing.B) {
	x, y := benchPair(1000, 1200, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCardinality(x, y)
	}
}

func BenchmarkAndCardinalitySkewed(b *testing.B) {
	x, y := benchPair(64, 3500, 1<<13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCardinality(x, y)
	}
}

func BenchmarkOrCardinality(b *testing.B) {
	x, y := benchPair(60000, 60000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrCardinality(x, y)
	}
}

func BenchmarkOrManyFanIn8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	inputs := make([]*Bitmap, 8)
	for i := range inputs {
		inputs[i] = randomBitmap(rng, 5000, 1<<18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrMany(inputs...)
	}
}

func BenchmarkUnionAccumulate8(b *testing.B) { // in-place accumulator (the BFS visited-set pattern)
	rng := rand.New(rand.NewSource(2))
	inputs := make([]*Bitmap, 8)
	for i := range inputs {
		inputs[i] = randomBitmap(rng, 5000, 1<<18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := New()
		for _, in := range inputs {
			acc.Union(in)
		}
	}
}

func BenchmarkOrFold8(b *testing.B) { // pairwise-fold baseline for OrMany
	rng := rand.New(rand.NewSource(2))
	inputs := make([]*Bitmap, 8)
	for i := range inputs {
		inputs[i] = randomBitmap(rng, 5000, 1<<18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := New()
		for _, in := range inputs {
			acc = Or(acc, in)
		}
	}
}

func BenchmarkOrManyFanIn64(b *testing.B) { // wide shard/frontier merges: the heap-cursor case
	rng := rand.New(rand.NewSource(3))
	inputs := make([]*Bitmap, 64)
	for i := range inputs {
		inputs[i] = randomBitmap(rng, 2000, 1<<20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrMany(inputs...)
	}
}

func BenchmarkAndNot(b *testing.B) { // the masked-SpMV frontier\visited shape
	x, y := benchPair(60000, 30000, 1<<18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndNot(x, y)
	}
}

func BenchmarkIntersects(b *testing.B) { // zero-alloc pull-probe: reverse row vs frontier mask
	x, y := benchPair(300, 60000, 1<<18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersects(x, y)
	}
}
