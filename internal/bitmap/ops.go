package bitmap

import "math/bits"

// And returns the intersection of a and b as a new bitmap.
func And(a, b *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			if c := andContainers(ca, cb); c != nil {
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// Or returns the union of a and b as a new bitmap.
func Or(a, b *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(a.containers) || j < len(b.containers) {
		switch {
		case j >= len(b.containers) || (i < len(a.containers) && a.containers[i].key < b.containers[j].key):
			out.containers = append(out.containers, a.containers[i].clone())
			i++
		case i >= len(a.containers) || b.containers[j].key < a.containers[i].key:
			out.containers = append(out.containers, b.containers[j].clone())
			j++
		default:
			out.containers = append(out.containers, orContainers(a.containers[i], b.containers[j]))
			i++
			j++
		}
	}
	return out
}

// AndNot returns the difference a − b as a new bitmap.
func AndNot(a, b *Bitmap) *Bitmap {
	out := New()
	j := 0
	for _, ca := range a.containers {
		for j < len(b.containers) && b.containers[j].key < ca.key {
			j++
		}
		if j < len(b.containers) && b.containers[j].key == ca.key {
			if c := andNotContainers(ca, b.containers[j]); c != nil {
				out.containers = append(out.containers, c)
			}
			continue
		}
		out.containers = append(out.containers, ca.clone())
	}
	return out
}

// Union mutates b to include every value of o, returning b.
func (b *Bitmap) Union(o *Bitmap) *Bitmap {
	merged := Or(b, o)
	b.containers = merged.containers
	return b
}

// Intersect mutates b to keep only values also in o, returning b.
func (b *Bitmap) Intersect(o *Bitmap) *Bitmap {
	merged := And(b, o)
	b.containers = merged.containers
	return b
}

// Difference mutates b to remove every value of o, returning b.
func (b *Bitmap) Difference(o *Bitmap) *Bitmap {
	merged := AndNot(b, o)
	b.containers = merged.containers
	return b
}

// AndCardinality returns |a ∩ b| without materialising the result.
func AndCardinality(a, b *Bitmap) int {
	n := 0
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			n += andCardinality(ca, cb)
			i++
			j++
		}
	}
	return n
}

// Intersects reports whether a and b share at least one value.
func Intersects(a, b *Bitmap) bool {
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			if andCardinality(ca, cb) > 0 {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// ---------- container-wise kernels ----------

func andContainers(a, b *container) *container {
	switch {
	case a.set != nil && b.set != nil:
		set := make([]uint64, wordsPerSet)
		card := 0
		for w := range set {
			set[w] = a.set[w] & b.set[w]
			card += bits.OnesCount64(set[w])
		}
		if card == 0 {
			return nil
		}
		c := &container{key: a.key, set: set, card: card}
		if card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	case a.array != nil && b.array != nil:
		out := intersectArrays(a.array, b.array)
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	default:
		arr, set := a, b
		if a.set != nil {
			arr, set = b, a
		}
		out := make([]uint16, 0, len(arr.array))
		for _, low := range arr.array {
			if set.set[low>>6]&(1<<(low&63)) != 0 {
				out = append(out, low)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	}
}

func andCardinality(a, b *container) int {
	switch {
	case a.set != nil && b.set != nil:
		n := 0
		for w := range a.set {
			n += bits.OnesCount64(a.set[w] & b.set[w])
		}
		return n
	case a.array != nil && b.array != nil:
		return len(intersectArrays(a.array, b.array))
	default:
		arr, set := a, b
		if a.set != nil {
			arr, set = b, a
		}
		n := 0
		for _, low := range arr.array {
			if set.set[low>>6]&(1<<(low&63)) != 0 {
				n++
			}
		}
		return n
	}
}

func orContainers(a, b *container) *container {
	if a.set != nil || b.set != nil || len(a.array)+len(b.array) > arrayToBitmapThreshold {
		set := make([]uint64, wordsPerSet)
		fill := func(c *container) {
			if c.set != nil {
				for w := range set {
					set[w] |= c.set[w]
				}
				return
			}
			for _, low := range c.array {
				set[low>>6] |= 1 << (low & 63)
			}
		}
		fill(a)
		fill(b)
		card := 0
		for _, w := range set {
			card += bits.OnesCount64(w)
		}
		c := &container{key: a.key, set: set, card: card}
		if card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	}
	out := make([]uint16, 0, len(a.array)+len(b.array))
	i, j := 0, 0
	for i < len(a.array) && j < len(b.array) {
		switch {
		case a.array[i] < b.array[j]:
			out = append(out, a.array[i])
			i++
		case a.array[i] > b.array[j]:
			out = append(out, b.array[j])
			j++
		default:
			out = append(out, a.array[i])
			i++
			j++
		}
	}
	out = append(out, a.array[i:]...)
	out = append(out, b.array[j:]...)
	return &container{key: a.key, array: out}
}

func andNotContainers(a, b *container) *container {
	switch {
	case a.set != nil && b.set != nil:
		set := make([]uint64, wordsPerSet)
		card := 0
		for w := range set {
			set[w] = a.set[w] &^ b.set[w]
			card += bits.OnesCount64(set[w])
		}
		if card == 0 {
			return nil
		}
		c := &container{key: a.key, set: set, card: card}
		if card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	case a.array != nil:
		out := make([]uint16, 0, len(a.array))
		for _, low := range a.array {
			if !b.contains(low) {
				out = append(out, low)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	default: // a is set, b is array
		c := a.clone()
		for _, low := range b.array {
			w, m := low>>6, uint64(1)<<(low&63)
			if c.set[w]&m != 0 {
				c.set[w] &^= m
				c.card--
			}
		}
		if c.card == 0 {
			return nil
		}
		if c.card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	}
}

func intersectArrays(a, b []uint16) []uint16 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]uint16, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
