package bitmap

import "math/bits"

// And returns the intersection of a and b as a new bitmap.
func And(a, b *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			if c := andContainers(ca, cb); c != nil {
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// Or returns the union of a and b as a new bitmap.
func Or(a, b *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(a.containers) || j < len(b.containers) {
		switch {
		case j >= len(b.containers) || (i < len(a.containers) && a.containers[i].key < b.containers[j].key):
			out.containers = append(out.containers, a.containers[i].clone())
			i++
		case i >= len(a.containers) || b.containers[j].key < a.containers[i].key:
			out.containers = append(out.containers, b.containers[j].clone())
			j++
		default:
			out.containers = append(out.containers, orContainers(a.containers[i], b.containers[j]))
			i++
			j++
		}
	}
	return out
}

// AndNot returns the difference a − b as a new bitmap.
func AndNot(a, b *Bitmap) *Bitmap {
	out := New()
	j := 0
	for _, ca := range a.containers {
		for j < len(b.containers) && b.containers[j].key < ca.key {
			j++
		}
		if j < len(b.containers) && b.containers[j].key == ca.key {
			if c := andNotContainers(ca, b.containers[j]); c != nil {
				out.containers = append(out.containers, c)
			}
			continue
		}
		out.containers = append(out.containers, ca.clone())
	}
	return out
}

// Union mutates b to include every value of o, returning b. Receiver
// containers are updated in place; only containers for keys b does not
// yet have are cloned from o (b never aliases o's storage afterwards).
func (b *Bitmap) Union(o *Bitmap) *Bitmap {
	if b == o || len(o.containers) == 0 {
		return b
	}
	if len(b.containers) == 0 {
		b.containers = make([]*container, len(o.containers))
		for i, c := range o.containers {
			b.containers[i] = c.clone()
		}
		return b
	}
	merged := make([]*container, 0, len(b.containers)+len(o.containers))
	i, j := 0, 0
	for i < len(b.containers) && j < len(o.containers) {
		ca, cb := b.containers[i], o.containers[j]
		switch {
		case ca.key < cb.key:
			merged = append(merged, ca)
			i++
		case ca.key > cb.key:
			merged = append(merged, cb.clone())
			j++
		default:
			ca.unionInPlace(cb)
			merged = append(merged, ca)
			i++
			j++
		}
	}
	merged = append(merged, b.containers[i:]...)
	for ; j < len(o.containers); j++ {
		merged = append(merged, o.containers[j].clone())
	}
	b.containers = merged
	return b
}

// Intersect mutates b to keep only values also in o, returning b. The
// container slice and the surviving containers' storage are reused; no
// allocation happens unless a set container shrinks below the array
// threshold.
func (b *Bitmap) Intersect(o *Bitmap) *Bitmap {
	if b == o {
		return b
	}
	out := b.containers[:0]
	j := 0
	for _, ca := range b.containers {
		for j < len(o.containers) && o.containers[j].key < ca.key {
			j++
		}
		if j < len(o.containers) && o.containers[j].key == ca.key {
			ca.intersectInPlace(o.containers[j])
			if ca.cardinality() > 0 {
				out = append(out, ca)
			}
			j++
		}
	}
	for k := len(out); k < len(b.containers); k++ {
		b.containers[k] = nil // release dropped containers to the GC
	}
	b.containers = out
	return b
}

// Difference mutates b to remove every value of o, returning b.
// Receiver containers are edited in place and the container slice is
// reused.
func (b *Bitmap) Difference(o *Bitmap) *Bitmap {
	if b == o {
		b.containers = nil
		return b
	}
	out := b.containers[:0]
	j := 0
	for _, ca := range b.containers {
		for j < len(o.containers) && o.containers[j].key < ca.key {
			j++
		}
		if j < len(o.containers) && o.containers[j].key == ca.key {
			ca.differenceInPlace(o.containers[j])
			if ca.cardinality() == 0 {
				continue
			}
		}
		out = append(out, ca)
	}
	for k := len(out); k < len(b.containers); k++ {
		b.containers[k] = nil
	}
	b.containers = out
	return b
}

// AndCardinality returns |a ∩ b| without materialising the result and
// without allocating.
func AndCardinality(a, b *Bitmap) int {
	n := 0
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			n += andCardinality(ca, cb)
			i++
			j++
		}
	}
	return n
}

// OrCardinality returns |a ∪ b| without materialising the result and
// without allocating, via |A| + |B| − |A ∩ B| per shared container.
func OrCardinality(a, b *Bitmap) int {
	n := 0
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			n += ca.cardinality()
			i++
		case ca.key > cb.key:
			n += cb.cardinality()
			j++
		default:
			n += ca.cardinality() + cb.cardinality() - andCardinality(ca, cb)
			i++
			j++
		}
	}
	for ; i < len(a.containers); i++ {
		n += a.containers[i].cardinality()
	}
	for ; j < len(b.containers); j++ {
		n += b.containers[j].cardinality()
	}
	return n
}

// Intersects reports whether a and b share at least one value.
func Intersects(a, b *Bitmap) bool {
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			if andCardinality(ca, cb) > 0 {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// ---------- container-wise kernels ----------

func andContainers(a, b *container) *container {
	if a.runs != nil || b.runs != nil {
		x, y := a, b
		if y.runs == nil {
			x, y = b, a // y is the run side
		}
		switch {
		case x.runs != nil: // both are runs: O(runs) interval merge
			rs, card := intersectRuns(x.runs, y.runs)
			return runsToContainer(a.key, rs, card)
		case x.set != nil:
			set, card := andRunSet(y.runs, x.set)
			if card == 0 {
				return nil
			}
			c := &container{key: a.key, set: set, card: card}
			if card < arrayToBitmapThreshold/2 {
				c.toArray()
			}
			return c
		default:
			out := andRunArray(y.runs, x.array, nil)
			if len(out) == 0 {
				return nil
			}
			return &container{key: a.key, array: out}
		}
	}
	switch {
	case a.set != nil && b.set != nil:
		set := make([]uint64, wordsPerSet)
		card := 0
		for w := range set {
			set[w] = a.set[w] & b.set[w]
			card += bits.OnesCount64(set[w])
		}
		if card == 0 {
			return nil
		}
		c := &container{key: a.key, set: set, card: card}
		if card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	case a.array != nil && b.array != nil:
		out := intersectArrays(a.array, b.array)
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	default:
		arr, set := a, b
		if a.set != nil {
			arr, set = b, a
		}
		out := make([]uint16, 0, len(arr.array))
		for _, low := range arr.array {
			if set.set[low>>6]&(1<<(low&63)) != 0 {
				out = append(out, low)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	}
}

func andCardinality(a, b *container) int {
	if a.runs != nil || b.runs != nil {
		x, y := a, b
		if y.runs == nil {
			x, y = b, a
		}
		switch {
		case x.runs != nil:
			return intersectRunsCount(x.runs, y.runs)
		case x.set != nil:
			return andRunSetCount(y.runs, x.set)
		default:
			return andRunArrayCount(y.runs, x.array)
		}
	}
	switch {
	case a.set != nil && b.set != nil:
		n := 0
		for w := range a.set {
			n += bits.OnesCount64(a.set[w] & b.set[w])
		}
		return n
	case a.array != nil && b.array != nil:
		return intersectArraysCount(a.array, b.array)
	default:
		arr, set := a, b
		if a.set != nil {
			arr, set = b, a
		}
		n := 0
		for _, low := range arr.array {
			if set.set[low>>6]&(1<<(low&63)) != 0 {
				n++
			}
		}
		return n
	}
}

func orContainers(a, b *container) *container {
	if a.array == nil || b.array == nil || len(a.array)+len(b.array) > arrayToBitmapThreshold {
		set := make([]uint64, wordsPerSet)
		fill := func(c *container) {
			if c.set != nil {
				for w := range set {
					set[w] |= c.set[w]
				}
				return
			}
			if c.runs != nil {
				for _, r := range c.runs {
					orWordRange(set, r.start, r.last())
				}
				return
			}
			for _, low := range c.array {
				set[low>>6] |= 1 << (low & 63)
			}
		}
		fill(a)
		fill(b)
		card := 0
		for _, w := range set {
			card += bits.OnesCount64(w)
		}
		c := &container{key: a.key, set: set, card: card}
		if card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	}
	out := make([]uint16, 0, len(a.array)+len(b.array))
	i, j := 0, 0
	for i < len(a.array) && j < len(b.array) {
		switch {
		case a.array[i] < b.array[j]:
			out = append(out, a.array[i])
			i++
		case a.array[i] > b.array[j]:
			out = append(out, b.array[j])
			j++
		default:
			out = append(out, a.array[i])
			i++
			j++
		}
	}
	out = append(out, a.array[i:]...)
	out = append(out, b.array[j:]...)
	return &container{key: a.key, array: out}
}

func andNotContainers(a, b *container) *container {
	if a.runs != nil {
		// The minuend thaws to its array/set view once; cheaper than
		// per-value representation dispatch below.
		a = a.clone()
		a.thaw()
	}
	if b.runs != nil {
		if a.set != nil {
			c := a.clone()
			for _, r := range b.runs {
				c.card -= clearWordRange(c.set, r.start, r.last())
			}
			if c.card == 0 {
				return nil
			}
			if c.card < arrayToBitmapThreshold/2 {
				c.toArray()
			}
			return c
		}
		// a is an array: drop values covered by b's runs in one walk.
		out := make([]uint16, 0, len(a.array))
		j := 0
		for _, v := range a.array {
			for j < len(b.runs) && b.runs[j].last() < v {
				j++
			}
			if j < len(b.runs) && b.runs[j].start <= v {
				continue
			}
			out = append(out, v)
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	}
	switch {
	case a.set != nil && b.set != nil:
		set := make([]uint64, wordsPerSet)
		card := 0
		for w := range set {
			set[w] = a.set[w] &^ b.set[w]
			card += bits.OnesCount64(set[w])
		}
		if card == 0 {
			return nil
		}
		c := &container{key: a.key, set: set, card: card}
		if card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	case a.array != nil:
		out := make([]uint16, 0, len(a.array))
		for _, low := range a.array {
			if !b.contains(low) {
				out = append(out, low)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	default: // a is set, b is array
		c := a.clone()
		for _, low := range b.array {
			w, m := low>>6, uint64(1)<<(low&63)
			if c.set[w]&m != 0 {
				c.set[w] &^= m
				c.card--
			}
		}
		if c.card == 0 {
			return nil
		}
		if c.card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return c
	}
}

// ---------- in-place container kernels ----------

// unionInPlace folds o into c, reusing c's storage where possible. When
// both sides are arrays that fit the array representation, the merge
// happens inside c.array's (grown) backing slice; otherwise c is
// promoted to a set and o is OR-ed in word by word. A set result never
// needs demotion: its cardinality is at least max(|c|, |o|), and any
// set operand already has card ≥ arrayToBitmapThreshold/2.
func (c *container) unionInPlace(o *container) {
	if c.runs != nil {
		c.thaw() // receivers mutate; the run form is read-only
	}
	if o.runs != nil {
		if c.array != nil {
			c.toSet()
		}
		for _, r := range o.runs {
			c.card += orWordRange(c.set, r.start, r.last())
		}
		return
	}
	if c.array != nil && o.array != nil {
		if len(c.array)+len(o.array) <= arrayToBitmapThreshold {
			c.array = mergeArraysInPlace(c.array, o.array)
			return
		}
		c.toSet()
	} else if c.array != nil { // o is a set
		c.toSet()
	}
	if o.set != nil {
		card := 0
		for w := range c.set {
			c.set[w] |= o.set[w]
			card += bits.OnesCount64(c.set[w])
		}
		c.card = card
		return
	}
	for _, low := range o.array {
		w, m := low>>6, uint64(1)<<(low&63)
		if c.set[w]&m == 0 {
			c.set[w] |= m
			c.card++
		}
	}
}

// intersectInPlace keeps only the values of c also present in o,
// editing c's storage in place (writes trail reads, so filtering within
// the same backing slice is safe). The only allocation is the demotion
// of a surviving set below the array threshold, or a set receiver
// intersected with an array operand (where the result is at most the
// operand's size).
func (c *container) intersectInPlace(o *container) {
	if c.runs != nil {
		c.thaw()
	}
	if o.runs != nil {
		if c.array != nil {
			k, j := 0, 0
			for _, v := range c.array {
				for j < len(o.runs) && o.runs[j].last() < v {
					j++
				}
				if j < len(o.runs) && o.runs[j].start <= v {
					c.array[k] = v
					k++
				}
			}
			c.array = c.array[:k]
			return
		}
		// c is a set: clear everything outside o's runs.
		prev := 0
		for _, r := range o.runs {
			if s := int(r.start); s > prev {
				c.card -= clearWordRange(c.set, uint16(prev), uint16(s-1))
			}
			prev = int(r.last()) + 1
		}
		if prev < containerSize {
			c.card -= clearWordRange(c.set, uint16(prev), containerSize-1)
		}
		if c.card > 0 && c.card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return
	}
	switch {
	case c.set != nil && o.set != nil:
		card := 0
		for w := range c.set {
			c.set[w] &= o.set[w]
			card += bits.OnesCount64(c.set[w])
		}
		c.card = card
		if card > 0 && card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
	case c.array != nil && o.array != nil:
		c.array = intersectArraysInPlace(c.array, o.array)
	case c.array != nil: // o is a set
		k := 0
		for _, low := range c.array {
			if o.set[low>>6]&(1<<(low&63)) != 0 {
				c.array[k] = low
				k++
			}
		}
		c.array = c.array[:k]
	default: // c is a set, o is an array
		out := make([]uint16, 0, len(o.array))
		for _, low := range o.array {
			if c.set[low>>6]&(1<<(low&63)) != 0 {
				out = append(out, low)
			}
		}
		c.array, c.set, c.card = out, nil, 0
	}
}

// differenceInPlace removes every value of o from c, editing c's
// storage in place.
func (c *container) differenceInPlace(o *container) {
	if c.runs != nil {
		c.thaw()
	}
	if o.runs != nil {
		if c.array != nil {
			k, j := 0, 0
			for _, v := range c.array {
				for j < len(o.runs) && o.runs[j].last() < v {
					j++
				}
				if j < len(o.runs) && o.runs[j].start <= v {
					continue
				}
				c.array[k] = v
				k++
			}
			c.array = c.array[:k]
			return
		}
		for _, r := range o.runs {
			c.card -= clearWordRange(c.set, r.start, r.last())
		}
		if c.card > 0 && c.card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return
	}
	switch {
	case c.set != nil && o.set != nil:
		card := 0
		for w := range c.set {
			c.set[w] &^= o.set[w]
			card += bits.OnesCount64(c.set[w])
		}
		c.card = card
		if card > 0 && card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
	case c.array != nil && o.array != nil:
		c.array = subtractArraysInPlace(c.array, o.array)
	case c.array != nil: // o is a set
		k := 0
		for _, low := range c.array {
			if o.set[low>>6]&(1<<(low&63)) == 0 {
				c.array[k] = low
				k++
			}
		}
		c.array = c.array[:k]
	default: // c is a set, o is an array
		for _, low := range o.array {
			w, m := low>>6, uint64(1)<<(low&63)
			if c.set[w]&m != 0 {
				c.set[w] &^= m
				c.card--
			}
		}
		if c.card > 0 && c.card < arrayToBitmapThreshold/2 {
			c.toArray()
		}
	}
}

// ---------- sorted-array kernels ----------

// gallopMinRatio is the length skew beyond which array intersection
// switches from the linear two-pointer merge to galloping (exponential
// probe + binary search) through the longer side. Below the ratio the
// branch-predictable linear merge wins.
const gallopMinRatio = 16

// gallopTo returns the smallest index i ≥ from with b[i] ≥ v, using
// exponential search from the current position so a pass over a short
// array costs O(short · log(long/short)) instead of O(long).
func gallopTo(b []uint16, from int, v uint16) int {
	if from >= len(b) || b[from] >= v {
		return from
	}
	// b[from] < v: probe exponentially for an upper bound.
	step, hi := 1, from+1
	for hi < len(b) && b[hi] < v {
		from = hi
		hi += step
		step <<= 1
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Invariant: b[from] < v and (hi == len(b) or b[hi] ≥ v); binary
	// search (from, hi] for the boundary.
	lo := from + 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func intersectArrays(a, b []uint16) []uint16 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]uint16, 0, len(a))
	if len(b) >= gallopMinRatio*len(a) {
		j := 0
		for _, v := range a {
			j = gallopTo(b, j, v)
			if j == len(b) {
				break
			}
			if b[j] == v {
				out = append(out, v)
				j++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectArraysCount is the allocation-free counting twin of
// intersectArrays.
func intersectArraysCount(a, b []uint16) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	if len(b) >= gallopMinRatio*len(a) {
		j := 0
		for _, v := range a {
			j = gallopTo(b, j, v)
			if j == len(b) {
				break
			}
			if b[j] == v {
				n++
				j++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectArraysInPlace filters a down to a ∩ b inside a's backing
// slice. Matches are written at index k ≤ the current read position, so
// no value is overwritten before it is read. Gallops through whichever
// side is much longer.
func intersectArraysInPlace(a, b []uint16) []uint16 {
	k := 0
	switch {
	case len(b) >= gallopMinRatio*len(a):
		j := 0
		for _, v := range a {
			j = gallopTo(b, j, v)
			if j == len(b) {
				break
			}
			if b[j] == v {
				a[k] = v
				k++
				j++
			}
		}
	case len(a) >= gallopMinRatio*len(b):
		i := 0
		for _, v := range b {
			i = gallopTo(a, i, v)
			if i == len(a) {
				break
			}
			if a[i] == v {
				a[k] = v
				k++
				i++
			}
		}
	default:
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				a[k] = a[i]
				k++
				i++
				j++
			}
		}
	}
	return a[:k]
}

// subtractArraysInPlace filters a down to a − b inside a's backing
// slice.
func subtractArraysInPlace(a, b []uint16) []uint16 {
	k, j := 0, 0
	gallop := len(b) >= gallopMinRatio*len(a)
	for _, v := range a {
		if gallop {
			j = gallopTo(b, j, v)
		} else {
			for j < len(b) && b[j] < v {
				j++
			}
		}
		if j < len(b) && b[j] == v {
			j++
			continue
		}
		a[k] = v
		k++
	}
	return a[:k]
}

// ---------- run kernels ----------

// intersectRuns returns the interval intersection of two run lists and
// its cardinality in O(|a| + |b|) interval steps.
func intersectRuns(a, b []run) ([]run, int) {
	var out []run
	card := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		as, ae := int(a[i].start), int(a[i].last())
		bs, be := int(b[j].start), int(b[j].last())
		if lo, hi := max(as, bs), min(ae, be); lo <= hi {
			out = append(out, run{uint16(lo), uint16(hi - lo)})
			card += hi - lo + 1
		}
		if ae < be {
			i++
		} else {
			j++
		}
	}
	return out, card
}

// intersectRunsCount is the allocation-free counting twin.
func intersectRunsCount(a, b []run) int {
	card := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		as, ae := int(a[i].start), int(a[i].last())
		bs, be := int(b[j].start), int(b[j].last())
		if lo, hi := max(as, bs), min(ae, be); lo <= hi {
			card += hi - lo + 1
		}
		if ae < be {
			i++
		} else {
			j++
		}
	}
	return card
}

// runsToContainer materializes a run-list intersection result in the
// kernels' output convention (array below the threshold, set above).
func runsToContainer(key uint64, rs []run, card int) *container {
	if card == 0 {
		return nil
	}
	c := &container{key: key, runs: rs, card: card}
	c.thaw()
	return c
}

// andRunSet intersects a run list with a bitset word-at-a-time,
// returning a fresh set and its cardinality.
func andRunSet(rs []run, src []uint64) ([]uint64, int) {
	set := make([]uint64, wordsPerSet)
	card := 0
	for _, r := range rs {
		fw, lw := int(r.start>>6), int(r.last()>>6)
		for w := fw; w <= lw; w++ {
			mask := ^uint64(0)
			if w == fw {
				mask &= ^uint64(0) << (r.start & 63)
			}
			if w == lw {
				mask &= ^uint64(0) >> (63 - r.last()&63)
			}
			v := src[w] & mask
			set[w] |= v
			card += bits.OnesCount64(v)
		}
	}
	return set, card
}

// andRunSetCount counts |runs ∩ set| with masked popcounts only.
func andRunSetCount(rs []run, src []uint64) int {
	card := 0
	for _, r := range rs {
		fw, lw := int(r.start>>6), int(r.last()>>6)
		for w := fw; w <= lw; w++ {
			mask := ^uint64(0)
			if w == fw {
				mask &= ^uint64(0) << (r.start & 63)
			}
			if w == lw {
				mask &= ^uint64(0) >> (63 - r.last()&63)
			}
			card += bits.OnesCount64(src[w] & mask)
		}
	}
	return card
}

// andRunArray intersects a run list with a sorted array by galloping
// to each run's boundaries and bulk-copying the covered segment,
// appending into out (which may be nil): O(runs · log n) probes.
func andRunArray(rs []run, arr []uint16, out []uint16) []uint16 {
	j := 0
	for _, r := range rs {
		j = gallopTo(arr, j, r.start)
		if j == len(arr) {
			break
		}
		if r.last() == ^uint16(0) {
			out = append(out, arr[j:]...)
			break
		}
		hi := gallopTo(arr, j, r.last()+1)
		out = append(out, arr[j:hi]...)
		j = hi
		if j == len(arr) {
			break
		}
	}
	return out
}

// andRunArrayCount is the allocation-free counting twin of
// andRunArray.
func andRunArrayCount(rs []run, arr []uint16) int {
	n, j := 0, 0
	for _, r := range rs {
		j = gallopTo(arr, j, r.start)
		if j == len(arr) {
			break
		}
		if r.last() == ^uint16(0) {
			n += len(arr) - j
			break
		}
		hi := gallopTo(arr, j, r.last()+1)
		n += hi - j
		j = hi
		if j == len(arr) {
			break
		}
	}
	return n
}

// mergeArraysInPlace merges sorted b into sorted a, reusing (growing)
// a's backing slice. The merge runs back-to-front into the grown tail —
// positions it writes are always at or beyond the last unread element
// of a — then compacts over the duplicate gap. b must not alias a.
func mergeArraysInPlace(a, b []uint16) []uint16 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	n, m := len(a), len(b)
	a = append(a, b...) // grow to n+m; the tail is overwritten below
	i, j, k := n-1, m-1, n+m-1
	for i >= 0 && j >= 0 {
		switch {
		case a[i] > b[j]:
			a[k] = a[i]
			i--
		case a[i] < b[j]:
			a[k] = b[j]
			j--
		default:
			a[k] = a[i]
			i--
			j--
		}
		k--
	}
	for j >= 0 {
		a[k] = b[j]
		j--
		k--
	}
	// a[0..i] is already in place; the merged run occupies a[k+1:]. A
	// gap of size (k-i) appears when duplicates were coalesced.
	if k > i {
		copy(a[i+1:], a[k+1:])
		a = a[:i+1+(n+m-1-k)]
	}
	return a
}
