package cypher

import (
	"fmt"

	"twigraph/internal/graph"
)

// evalExpr evaluates an expression against one row. vars may be nil for
// expressions known to be row-independent (literals and parameters,
// e.g. index-seek values).
func evalExpr(ec *execCtx, vars *varMap, e Expr, r row) (any, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *Param:
		v, ok := ec.params[x.Name]
		if !ok {
			return nil, fmt.Errorf("cypher: missing parameter $%s", x.Name)
		}
		return v, nil
	case *Var:
		slot, ok := lookupVar(vars, x.Name)
		if !ok {
			return nil, fmt.Errorf("cypher: unknown variable %q", x.Name)
		}
		return r[slot], nil
	case *PropAccess:
		slot, ok := lookupVar(vars, x.Var)
		if !ok {
			return nil, fmt.Errorf("cypher: unknown variable %q", x.Var)
		}
		switch ref := r[slot].(type) {
		case NodeRef:
			key := ec.propKey(x.Key)
			if key == graph.NilAttr {
				return graph.NilValue, nil
			}
			v, err := ec.db.NodeProp(graph.NodeID(ref), key)
			if err != nil {
				return nil, err
			}
			return v, nil
		case nil:
			return graph.NilValue, nil
		default:
			return graph.NilValue, nil
		}
	case *UnaryOp:
		v, err := evalExpr(ec, vars, x.X, r)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			if cellIsNull(v) {
				return graph.NilValue, nil
			}
			return graph.BoolValue(!cellTruth(v)), nil
		case "-":
			gv, ok := v.(graph.Value)
			if !ok {
				return nil, fmt.Errorf("cypher: cannot negate %T", v)
			}
			if gv.Kind() == graph.KindFloat {
				return graph.FloatValue(-gv.Float()), nil
			}
			return graph.IntValue(-gv.Int()), nil
		}
		return nil, fmt.Errorf("cypher: unknown unary op %q", x.Op)
	case *BinOp:
		return evalBinOp(ec, vars, x, r)
	case *FuncCall:
		return evalFunc(ec, vars, x, r)
	case *PatternPred:
		ok, err := evalPatternPred(ec, vars, x, r)
		if err != nil {
			return nil, err
		}
		return graph.BoolValue(ok), nil
	}
	return nil, fmt.Errorf("cypher: cannot evaluate %T", e)
}

func lookupVar(vars *varMap, name string) (int, bool) {
	if vars == nil {
		return 0, false
	}
	return vars.lookup(name)
}

func evalBinOp(ec *execCtx, vars *varMap, x *BinOp, r row) (any, error) {
	// Short-circuit logical operators.
	switch x.Op {
	case "AND":
		l, err := evalExpr(ec, vars, x.L, r)
		if err != nil {
			return nil, err
		}
		if !cellIsNull(l) && !cellTruth(l) {
			return graph.BoolValue(false), nil
		}
		rv, err := evalExpr(ec, vars, x.R, r)
		if err != nil {
			return nil, err
		}
		return graph.BoolValue(cellTruth(l) && cellTruth(rv)), nil
	case "OR":
		l, err := evalExpr(ec, vars, x.L, r)
		if err != nil {
			return nil, err
		}
		if cellTruth(l) {
			return graph.BoolValue(true), nil
		}
		rv, err := evalExpr(ec, vars, x.R, r)
		if err != nil {
			return nil, err
		}
		return graph.BoolValue(cellTruth(rv)), nil
	case "XOR":
		l, err := evalExpr(ec, vars, x.L, r)
		if err != nil {
			return nil, err
		}
		rv, err := evalExpr(ec, vars, x.R, r)
		if err != nil {
			return nil, err
		}
		return graph.BoolValue(cellTruth(l) != cellTruth(rv)), nil
	}

	l, err := evalExpr(ec, vars, x.L, r)
	if err != nil {
		return nil, err
	}
	rv, err := evalExpr(ec, vars, x.R, r)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=":
		return graph.BoolValue(cellEqual(l, rv)), nil
	case "<>":
		if cellIsNull(l) || cellIsNull(rv) {
			return graph.BoolValue(false), nil
		}
		return graph.BoolValue(!cellEqual(l, rv)), nil
	case "<", "<=", ">", ">=":
		lv, ok1 := l.(graph.Value)
		rg, ok2 := rv.(graph.Value)
		if !ok1 || !ok2 || lv.IsNil() || rg.IsNil() {
			return graph.BoolValue(false), nil
		}
		c := lv.Compare(rg)
		switch x.Op {
		case "<":
			return graph.BoolValue(c < 0), nil
		case "<=":
			return graph.BoolValue(c <= 0), nil
		case ">":
			return graph.BoolValue(c > 0), nil
		default:
			return graph.BoolValue(c >= 0), nil
		}
	case "IN":
		list, ok := rv.(ListVal)
		if !ok {
			return graph.BoolValue(false), nil
		}
		for _, item := range list {
			if cellEqual(l, item) {
				return graph.BoolValue(true), nil
			}
		}
		return graph.BoolValue(false), nil
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, rv)
	}
	return nil, fmt.Errorf("cypher: unknown operator %q", x.Op)
}

func evalArith(op string, l, r any) (any, error) {
	lv, ok1 := l.(graph.Value)
	rv, ok2 := r.(graph.Value)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("cypher: arithmetic on non-scalars")
	}
	if op == "+" && (lv.Kind() == graph.KindString || rv.Kind() == graph.KindString) {
		return graph.StringValue(scalarString(lv) + scalarString(rv)), nil
	}
	if lv.Kind() == graph.KindFloat || rv.Kind() == graph.KindFloat {
		a, b := lv.Float(), rv.Float()
		switch op {
		case "+":
			return graph.FloatValue(a + b), nil
		case "-":
			return graph.FloatValue(a - b), nil
		case "*":
			return graph.FloatValue(a * b), nil
		case "/":
			if b == 0 {
				return nil, fmt.Errorf("cypher: division by zero")
			}
			return graph.FloatValue(a / b), nil
		case "%":
			return nil, fmt.Errorf("cypher: %% on floats")
		}
	}
	a, b := lv.Int(), rv.Int()
	switch op {
	case "+":
		return graph.IntValue(a + b), nil
	case "-":
		return graph.IntValue(a - b), nil
	case "*":
		return graph.IntValue(a * b), nil
	case "/":
		if b == 0 {
			return nil, fmt.Errorf("cypher: division by zero")
		}
		return graph.IntValue(a / b), nil
	case "%":
		if b == 0 {
			return nil, fmt.Errorf("cypher: modulo by zero")
		}
		return graph.IntValue(a % b), nil
	}
	return nil, fmt.Errorf("cypher: unknown arithmetic op %q", op)
}

func scalarString(v graph.Value) string {
	if v.Kind() == graph.KindString {
		return v.Str()
	}
	return v.String()
}

func evalFunc(ec *execCtx, vars *varMap, x *FuncCall, r row) (any, error) {
	if isAggregateFunc(x.Name) {
		return nil, fmt.Errorf("cypher: aggregate %s outside aggregation context", x.Name)
	}
	switch x.Name {
	case "length":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("cypher: length wants 1 argument")
		}
		v, err := evalExpr(ec, vars, x.Args[0], r)
		if err != nil {
			return nil, err
		}
		switch t := v.(type) {
		case PathVal:
			return graph.IntValue(int64(t.Length())), nil
		case ListVal:
			return graph.IntValue(int64(len(t))), nil
		case graph.Value:
			if t.Kind() == graph.KindString {
				return graph.IntValue(int64(len(t.Str()))), nil
			}
		}
		return graph.NilValue, nil
	case "size":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("cypher: size wants 1 argument")
		}
		v, err := evalExpr(ec, vars, x.Args[0], r)
		if err != nil {
			return nil, err
		}
		if lv, ok := v.(ListVal); ok {
			return graph.IntValue(int64(len(lv))), nil
		}
		if gv, ok := v.(graph.Value); ok && gv.Kind() == graph.KindString {
			return graph.IntValue(int64(len(gv.Str()))), nil
		}
		return graph.NilValue, nil
	case "id":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("cypher: id wants 1 argument")
		}
		v, err := evalExpr(ec, vars, x.Args[0], r)
		if err != nil {
			return nil, err
		}
		switch t := v.(type) {
		case NodeRef:
			return graph.IntValue(int64(t)), nil
		case RelRef:
			return graph.IntValue(int64(t)), nil
		}
		return graph.NilValue, nil
	case "exists":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("cypher: exists wants 1 argument")
		}
		v, err := evalExpr(ec, vars, x.Args[0], r)
		if err != nil {
			return nil, err
		}
		if b, ok := v.(graph.Value); ok && b.Kind() == graph.KindBool {
			return b, nil // exists(pattern) already boolean
		}
		return graph.BoolValue(!cellIsNull(v)), nil
	case "labels":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("cypher: labels wants 1 argument")
		}
		v, err := evalExpr(ec, vars, x.Args[0], r)
		if err != nil {
			return nil, err
		}
		if ref, ok := v.(NodeRef); ok {
			n, err := ec.db.NodeByID(graph.NodeID(ref))
			if err != nil {
				return nil, err
			}
			return ListVal{graph.StringValue(ec.db.LabelName(n.Label))}, nil
		}
		return graph.NilValue, nil
	}
	return nil, fmt.Errorf("cypher: unknown function %s", x.Name)
}

// evalAggregate evaluates an aggregate-containing item over a group of
// rows. The expression must be a bare aggregate call or an arithmetic
// combination thereof.
func evalAggregate(ec *execCtx, vars *varMap, e Expr, rows []row) (any, error) {
	switch x := e.(type) {
	case *FuncCall:
		if !isAggregateFunc(x.Name) {
			return nil, fmt.Errorf("cypher: %s is not an aggregate", x.Name)
		}
		return applyAggregate(ec, vars, x, rows)
	case *BinOp:
		l, err := evalAggregateOperand(ec, vars, x.L, rows)
		if err != nil {
			return nil, err
		}
		r, err := evalAggregateOperand(ec, vars, x.R, rows)
		if err != nil {
			return nil, err
		}
		return evalArith(x.Op, l, r)
	case *UnaryOp:
		v, err := evalAggregateOperand(ec, vars, x.X, rows)
		if err != nil {
			return nil, err
		}
		if gv, ok := v.(graph.Value); ok && x.Op == "-" {
			return graph.IntValue(-gv.Int()), nil
		}
		return nil, fmt.Errorf("cypher: unary %s over aggregate", x.Op)
	}
	return nil, fmt.Errorf("cypher: unsupported aggregate expression")
}

func evalAggregateOperand(ec *execCtx, vars *varMap, e Expr, rows []row) (any, error) {
	if hasAggregate(e) {
		return evalAggregate(ec, vars, e, rows)
	}
	if len(rows) == 0 {
		return graph.NilValue, nil
	}
	return evalExpr(ec, vars, e, rows[0])
}

func applyAggregate(ec *execCtx, vars *varMap, x *FuncCall, rows []row) (any, error) {
	if x.Name == "count" && x.Star {
		return graph.IntValue(int64(len(rows))), nil
	}
	if len(x.Args) != 1 {
		return nil, fmt.Errorf("cypher: %s wants 1 argument", x.Name)
	}
	var vals []any
	seen := map[string]bool{}
	for _, r := range rows {
		v, err := evalExpr(ec, vars, x.Args[0], r)
		if err != nil {
			return nil, err
		}
		if cellIsNull(v) {
			continue
		}
		if x.Distinct {
			k := cellKey(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch x.Name {
	case "count":
		return graph.IntValue(int64(len(vals))), nil
	case "collect":
		return ListVal(vals), nil
	case "sum":
		var isum int64
		var fsum float64
		isFloat := false
		for _, v := range vals {
			gv, ok := v.(graph.Value)
			if !ok {
				return nil, fmt.Errorf("cypher: sum over non-scalar")
			}
			if gv.Kind() == graph.KindFloat {
				isFloat = true
			}
			isum += gv.Int()
			fsum += gv.Float()
		}
		if isFloat {
			return graph.FloatValue(fsum), nil
		}
		return graph.IntValue(isum), nil
	case "avg":
		if len(vals) == 0 {
			return graph.NilValue, nil
		}
		var fsum float64
		for _, v := range vals {
			gv, ok := v.(graph.Value)
			if !ok {
				return nil, fmt.Errorf("cypher: avg over non-scalar")
			}
			fsum += gv.Float()
		}
		return graph.FloatValue(fsum / float64(len(vals))), nil
	case "min", "max":
		if len(vals) == 0 {
			return graph.NilValue, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := cellCompare(v, best)
			if (x.Name == "min" && c < 0) || (x.Name == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("cypher: unknown aggregate %s", x.Name)
}

// evalInt evaluates a row-independent integer expression (SKIP/LIMIT).
func evalInt(ec *execCtx, vars *varMap, e Expr, r row) (int, error) {
	v, err := evalExpr(ec, vars, e, r)
	if err != nil {
		return 0, err
	}
	gv, ok := v.(graph.Value)
	if !ok || gv.Kind() != graph.KindInt {
		return 0, fmt.Errorf("cypher: expected integer")
	}
	if gv.Int() < 0 {
		return 0, fmt.Errorf("cypher: negative SKIP/LIMIT")
	}
	return int(gv.Int()), nil
}

// evalPatternPred checks existence of a pattern from bound variables —
// the predicate form `WHERE NOT (a)-[:follows]->(f)`. The first node
// variable must be bound; subsequent nodes may be bound variables,
// anonymous, or fresh names (treated as existentially quantified).
func evalPatternPred(ec *execCtx, vars *varMap, p *PatternPred, r row) (bool, error) {
	nodes, rels := splitChain(p.Parts)
	startSlot, ok := lookupVar(vars, nodes[0].Var)
	if !ok {
		return false, fmt.Errorf("cypher: pattern predicate must start at a bound variable (%q)", nodes[0].Var)
	}
	start, ok := r[startSlot].(NodeRef)
	if !ok {
		return false, nil // unmatched OPTIONAL binding
	}
	return existsChain(ec, vars, r, graph.NodeID(start), nodes, rels, 1)
}

// existsChain recursively checks whether the chain suffix starting at
// nodes[idx] can be satisfied from cur.
func existsChain(ec *execCtx, vars *varMap, r row, cur graph.NodeID, nodes []NodePattern, rels []RelPattern, idx int) (bool, error) {
	if idx >= len(nodes) {
		return true, nil
	}
	rel := rels[idx-1]
	t := graph.NilType
	if rel.Type != "" {
		t = ec.db.RelTypeID(rel.Type)
		if t == graph.NilType {
			return false, nil
		}
	}
	target := nodes[idx]
	var want graph.NodeID
	haveTarget := false
	if target.Var != "" {
		if slot, ok := lookupVar(vars, target.Var); ok {
			if ref, ok := r[slot].(NodeRef); ok {
				want = graph.NodeID(ref)
				haveTarget = true
			}
		}
	}
	found := false
	var innerErr error
	err := expandPaths(ec, cur, t, rel.Dir, rel.MinHops, rel.MaxHops,
		func(end graph.NodeID, _ []graph.EdgeID) bool {
			if haveTarget && end != want {
				return true
			}
			if target.Label != "" {
				n, err := ec.db.NodeByID(end)
				if err != nil || n.Label != ec.db.LabelID(target.Label) {
					return true
				}
			}
			ok, err := existsChain(ec, vars, r, end, nodes, rels, idx+1)
			if err != nil {
				innerErr = err
				return false
			}
			if ok {
				found = true
				return false
			}
			return true
		})
	if err != nil {
		return false, err
	}
	if innerErr != nil {
		return false, innerErr
	}
	return found, nil
}
