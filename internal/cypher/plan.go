package cypher

import (
	"fmt"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/qstats"
)

// The planner compiles an AST into a pipeline of stages. Each MATCH
// becomes a matchStage holding primitive steps (anchor, expand, filter);
// WITH and RETURN become projectStages. Anchor selection is cost-based
// using store statistics: an index seek costs ~1, a label scan costs the
// label cardinality, a full node scan costs the node count, and an
// already-bound variable costs nothing. This mirrors the paper's
// observation that phrasings compile to different plans whose database
// access counts differ.

// varMap assigns row slots to variable names for one pipeline segment.
type varMap struct {
	slots map[string]int
	n     int
}

func newVarMap() *varMap { return &varMap{slots: map[string]int{}} }

func (m *varMap) lookup(name string) (int, bool) {
	s, ok := m.slots[name]
	return s, ok
}

func (m *varMap) bind(name string) int {
	if s, ok := m.slots[name]; ok {
		return s
	}
	s := m.n
	m.n++
	if name != "" {
		m.slots[name] = s
	}
	return s
}

func (m *varMap) clone() *varMap {
	c := &varMap{slots: make(map[string]int, len(m.slots)), n: m.n}
	for k, v := range m.slots {
		c.slots[k] = v
	}
	return c
}

// Prepared is a compiled, cacheable execution plan.
type Prepared struct {
	text     string
	fp       qstats.Fingerprint // literal-normalised statement identity
	profiled bool
	stages   []stage
	columns  []string
}

// Columns returns the result column names.
func (p *Prepared) Columns() []string { return p.columns }

// Fingerprint returns the plan's normalised statement identity — the
// key its executions aggregate under in the engine's query statistics.
func (p *Prepared) Fingerprint() qstats.Fingerprint { return p.fp }

// compile builds the stage pipeline for a parsed query. The statement
// fingerprint is computed here, once per compiled plan, so cached
// plans re-execute with zero fingerprinting cost.
func compile(db *neodb.DB, q *Query, text string) (*Prepared, error) {
	prep := &Prepared{text: text, fp: qstats.Compute(text), profiled: q.Profiled}
	vm := newVarMap()
	var lastProjection *WithClause
	for i, cl := range q.Clauses {
		switch c := cl.(type) {
		case *MatchClause:
			st, err := compileMatch(db, c, vm)
			if err != nil {
				return nil, err
			}
			prep.stages = append(prep.stages, st)
		case *UnwindClause:
			st := &unwindStage{expr: c.Expr, vars: vm.clone(), outSlot: vm.bind(c.Alias), width: vm.n}
			prep.stages = append(prep.stages, st)
		case *WithClause:
			st, nvm, err := compileProjection(db, c, vm)
			if err != nil {
				return nil, err
			}
			prep.stages = append(prep.stages, st)
			vm = nvm
			if c.Final {
				if i != len(q.Clauses)-1 {
					return nil, fmt.Errorf("cypher: RETURN must be the final clause")
				}
				lastProjection = c
			}
		}
	}
	if lastProjection == nil {
		return nil, fmt.Errorf("cypher: missing RETURN")
	}
	for _, it := range lastProjection.Items {
		prep.columns = append(prep.columns, it.Alias)
	}
	return prep, nil
}

// ---------- MATCH compilation ----------

func compileMatch(db *neodb.DB, c *MatchClause, vm *varMap) (*matchStage, error) {
	st := &matchStage{optional: c.Optional, where: c.Where}
	for _, pat := range c.Patterns {
		if err := compilePattern(db, pat, vm, st); err != nil {
			return nil, err
		}
	}
	st.vars = vm.clone()
	st.width = vm.n
	return st, nil
}

func compilePattern(db *neodb.DB, pat Pattern, vm *varMap, st *matchStage) error {
	nodes, rels := splitChain(pat.Parts)
	if pat.ShortestPath {
		if len(rels) != 1 {
			return fmt.Errorf("cypher: shortestPath wants a single relationship pattern")
		}
		fromSlot, ok := vm.lookup(nodes[0].Var)
		if !ok {
			return fmt.Errorf("cypher: shortestPath endpoint %q must be bound", nodes[0].Var)
		}
		toSlot, ok := vm.lookup(nodes[1].Var)
		if !ok {
			return fmt.Errorf("cypher: shortestPath endpoint %q must be bound", nodes[1].Var)
		}
		maxHops := rels[0].MaxHops
		if maxHops < 0 {
			maxHops = 15 // Cypher's default upper bound for shortestPath
		}
		pathSlot := -1
		if pat.Name != "" {
			pathSlot = vm.bind(pat.Name)
		}
		st.steps = append(st.steps, &stepShortestPath{
			pathSlot: pathSlot, fromSlot: fromSlot, toSlot: toSlot,
			relType: rels[0].Type, dir: rels[0].Dir, maxHops: maxHops,
		})
		return nil
	}
	if pat.Name != "" {
		return fmt.Errorf("cypher: named paths are only supported with shortestPath")
	}

	// Assign a slot per chain position. Named variables share slots
	// across mentions; anonymous nodes get fresh slots.
	slots := make([]int, len(nodes))
	bound := make([]bool, len(nodes))
	for i, n := range nodes {
		if n.Var != "" {
			if s, ok := vm.lookup(n.Var); ok {
				slots[i], bound[i] = s, true
				continue
			}
		}
		slots[i] = vm.bind(n.Var)
	}

	// Choose the cheapest anchor position, then expand rightward and
	// leftward from it.
	anchor := chooseAnchor(db, nodes, bound)
	emitAnchor(db, nodes[anchor], slots[anchor], bound[anchor], st)
	reached := make([]bool, len(nodes))
	reached[anchor] = true
	for i := anchor; i+1 < len(nodes); i++ {
		emitExpand(db, vm, rels[i], slots[i], slots[i+1], bound[i+1] || reached[i+1], false, nodes[i+1], st)
		reached[i+1] = true
	}
	for i := anchor; i-1 >= 0; i-- {
		emitExpand(db, vm, rels[i-1], slots[i], slots[i-1], bound[i-1] || reached[i-1], true, nodes[i-1], st)
		reached[i-1] = true
	}
	return nil
}

func splitChain(parts []PatternPart) ([]NodePattern, []RelPattern) {
	var nodes []NodePattern
	var rels []RelPattern
	for _, p := range parts {
		if p.IsRel {
			rels = append(rels, p.Rel)
		} else {
			nodes = append(nodes, p.Node)
		}
	}
	return nodes, rels
}

// chooseAnchor returns the cheapest node position to start matching
// from.
func chooseAnchor(db *neodb.DB, nodes []NodePattern, bound []bool) int {
	best, bestCost := 0, float64(1e18)
	for i, n := range nodes {
		cost := anchorCost(db, n, bound[i])
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

func anchorCost(db *neodb.DB, n NodePattern, bound bool) float64 {
	if bound {
		return 0
	}
	if n.Label != "" {
		label := db.LabelID(n.Label)
		for _, pm := range n.Props {
			key := db.PropKeyID(pm.Key)
			if key != graph.NilAttr && db.HasIndex(label, key) {
				return 1
			}
		}
		return float64(db.LabelCount(label))
	}
	return float64(db.NodeCount())
}

func emitAnchor(db *neodb.DB, n NodePattern, slot int, bound bool, st *matchStage) {
	if bound {
		// Already bound: just verify label/props.
		emitNodeFilters(db, n, slot, st, "")
		return
	}
	label := graph.NilType
	if n.Label != "" {
		label = db.LabelID(n.Label)
	}
	// Index seek when an equality prop is indexed.
	if label != graph.NilType {
		for _, pm := range n.Props {
			key := db.PropKeyID(pm.Key)
			if key != graph.NilAttr && db.HasIndex(label, key) {
				st.steps = append(st.steps, &stepIndexSeek{slot: slot, label: label, key: key, val: pm.Expr})
				emitNodeFilters(db, n, slot, st, pm.Key)
				return
			}
		}
		st.steps = append(st.steps, &stepLabelScan{slot: slot, label: label})
		emitNodeFilters(db, n, slot, st, "")
		return
	}
	st.steps = append(st.steps, &stepAllNodes{slot: slot})
	emitNodeFilters(db, n, slot, st, "")
}

// emitNodeFilters adds label and property-equality filters for a node
// already bound at slot. skipKey names a property already satisfied by
// an index seek.
func emitNodeFilters(db *neodb.DB, n NodePattern, slot int, st *matchStage, skipKey string) {
	if n.Label != "" {
		st.steps = append(st.steps, &stepLabelFilter{slot: slot, label: db.LabelID(n.Label)})
	}
	for _, pm := range n.Props {
		if skipKey != "" && pm.Key == skipKey {
			continue
		}
		st.steps = append(st.steps, &stepPropFilter{slot: slot, key: pm.Key, val: pm.Expr})
	}
}

// emitExpand adds an expand step from one chain position to the next,
// filtering the target's label and property constraints afterwards.
func emitExpand(db *neodb.DB, vm *varMap, rel RelPattern, fromSlot, toSlot int, toBound, reversed bool, to NodePattern, st *matchStage) {
	dir := rel.Dir
	if reversed {
		dir = dir.Reverse()
	}
	relSlot := -1
	if rel.Var != "" {
		relSlot = vm.bind(rel.Var) // single-hop binding; lists for var-length
	}
	st.steps = append(st.steps, &stepExpand{
		fromSlot: fromSlot, toSlot: toSlot, relSlot: relSlot,
		relType: rel.Type, dir: dir,
		minHops: rel.MinHops, maxHops: rel.MaxHops,
		toBound: toBound,
	})
	emitNodeFilters(db, to, toSlot, st, "")
}

// ---------- projection compilation ----------

func compileProjection(db *neodb.DB, c *WithClause, vm *varMap) (*projectStage, *varMap, error) {
	st := &projectStage{clause: c, inVars: vm.clone()}
	out := newVarMap()
	for _, it := range c.Items {
		if _, dup := out.lookup(it.Alias); dup {
			return nil, nil, fmt.Errorf("cypher: duplicate column %q", it.Alias)
		}
		out.bind(it.Alias)
	}
	st.outVars = out
	for _, it := range c.Items {
		if hasAggregate(it.Expr) {
			st.hasAgg = true
			break
		}
	}
	return st, out, nil
}
