package cypher

import (
	"testing"

	"twigraph/internal/qstats"
)

// TestEngineRecordsQueryStats covers the acceptance criterion at the
// engine level: two executions of one query shape with different
// literals land on one fingerprint row, and distinct shapes get
// distinct rows.
func TestEngineRecordsQueryStats(t *testing.T) {
	e, _ := newTestEngine(t)
	stats := e.DB().QueryStats()
	stats.Reset() // drop any setup noise

	queries := []string{
		`MATCH (u:user) WHERE u.followers > 1 RETURN u.uid AS uid ORDER BY uid`,
		`MATCH (u:user) WHERE u.followers > 0 RETURN u.uid AS uid ORDER BY uid`,
		`MATCH (u:user {uid: 1})-[:follows]->(f:user) RETURN f.uid AS uid ORDER BY uid`,
	}
	for _, q := range queries {
		if _, err := e.Query(q, nil); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	snaps := stats.Snapshot()
	if len(snaps) != 2 {
		for _, sn := range snaps {
			t.Logf("row: %s calls=%d %s", sn.Fingerprint, sn.Calls, sn.Query)
		}
		t.Fatalf("want 2 fingerprints (literals collapsed), got %d", len(snaps))
	}
	var total uint64
	for _, sn := range snaps {
		total += sn.Calls
		if sn.Latency.Count != sn.Calls {
			t.Fatalf("latency count %d != calls %d", sn.Latency.Count, sn.Calls)
		}
		if sn.Deltas["record_fetches"] == 0 {
			t.Fatalf("no record_fetches delta accounted for %s", sn.Query)
		}
	}
	if total != 3 {
		t.Fatalf("total calls %d, want 3", total)
	}
}

// TestEngineSkipsAccountedContext checks the double-counting guard:
// when a store-level wrapper has already recorded the query (and says
// so via the context), the engine must not record it again — but it
// still reuses the caller's query ID for its spans.
func TestEngineSkipsAccountedContext(t *testing.T) {
	e, _ := newTestEngine(t)
	stats := e.DB().QueryStats()
	stats.Reset()

	ctx := qstats.MarkAccounted(qstats.WithQueryID(nil, qstats.NextQueryID()))
	if _, err := e.QueryCtx(ctx, `MATCH (u:user) RETURN u.uid`, nil); err != nil {
		t.Fatal(err)
	}
	if n := stats.Len(); n != 0 {
		t.Fatalf("accounted ctx still recorded %d rows", n)
	}

	// Unaccounted ctx with a preset query ID records normally.
	ctx = qstats.WithQueryID(nil, qstats.NextQueryID())
	if _, err := e.QueryCtx(ctx, `MATCH (u:user) RETURN u.uid`, nil); err != nil {
		t.Fatal(err)
	}
	if n := stats.Len(); n != 1 {
		t.Fatalf("unaccounted ctx recorded %d rows, want 1", n)
	}
}

// TestRootSpanCarriesQueryAttribution checks the slow ring's entries
// carry query ID and fingerprint for engine-level executions.
func TestRootSpanCarriesQueryAttribution(t *testing.T) {
	e, _ := newTestEngine(t)
	tr := e.DB().Tracer()
	tr.SetEnabled(true)
	tr.SetSlowThreshold(0)
	defer tr.SetEnabled(false)

	q := `MATCH (u:user {uid: 3}) RETURN u.uid`
	if _, err := e.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	log := tr.SlowLog()
	if len(log) == 0 {
		t.Fatal("no slow entries recorded")
	}
	last := log[len(log)-1]
	if last.QueryID == 0 {
		t.Fatal("root span has no query ID")
	}
	want := qstats.Compute(q).Hash
	if last.Fingerprint != want {
		t.Fatalf("span fingerprint %q, want %q", last.Fingerprint, want)
	}
}
