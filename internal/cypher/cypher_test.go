package cypher

import (
	"strings"
	"testing"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
)

// newTestEngine builds a small Twittersphere:
//
//	users 1..6 (uid, screen_name, followers)
//	follows: 1->2, 1->3, 2->3, 3->4, 4->5, 5->1, 2->6
//	tweets: 100 (by u2, mentions u1, tags #go), 101 (by u3, mentions u1),
//	        102 (by u3, tags #go #db), 103 (by u6, mentions u2, tags #db)
func newTestEngine(t *testing.T) (*Engine, map[string]graph.NodeID) {
	t.Helper()
	db, err := neodb.Open(t.TempDir(), neodb.Config{CachePages: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	user := db.Label("user")
	tweet := db.Label("tweet")
	hashtag := db.Label("hashtag")
	uid := db.PropKey("uid")
	tid := db.PropKey("tid")
	hid := db.PropKey("hid")
	follows := db.RelType("follows")
	posts := db.RelType("posts")
	mentions := db.RelType("mentions")
	tags := db.RelType("tags")
	for _, pair := range [][2]graph.TypeID{{user, 0}, {tweet, 0}, {hashtag, 0}} {
		_ = pair
	}
	if err := db.CreateIndex(user, uid); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(tweet, tid); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(hashtag, hid); err != nil {
		t.Fatal(err)
	}

	objs := map[string]graph.NodeID{}
	tx := db.Begin()
	names := []string{"", "alice", "bob", "carol", "dave", "eve", "frank"}
	followerCount := map[int]int64{1: 1, 2: 1, 3: 2, 4: 1, 5: 1, 6: 1}
	for i := 1; i <= 6; i++ {
		objs[names[i]] = tx.CreateNode(user, graph.Properties{
			"uid":         graph.IntValue(int64(i)),
			"screen_name": graph.StringValue(names[i]),
			"followers":   graph.IntValue(followerCount[i]),
		})
	}
	for _, e := range [][2]string{{"alice", "bob"}, {"alice", "carol"}, {"bob", "carol"},
		{"carol", "dave"}, {"dave", "eve"}, {"eve", "alice"}, {"bob", "frank"}} {
		tx.CreateRel(follows, objs[e[0]], objs[e[1]])
	}
	tweets := map[string]struct {
		id       int64
		text     string
		author   string
		mentions []string
		tags     []string
	}{
		"t100": {100, "hello @alice #go", "bob", []string{"alice"}, []string{"go"}},
		"t101": {101, "hi @alice", "carol", []string{"alice"}, nil},
		"t102": {102, "#go #db rocks", "carol", nil, []string{"go", "db"}},
		"t103": {103, "ping @bob #db", "frank", []string{"bob"}, []string{"db"}},
	}
	tagIDs := map[string]graph.NodeID{}
	nextHid := int64(1)
	for _, tag := range []string{"go", "db"} {
		tagIDs[tag] = tx.CreateNode(hashtag, graph.Properties{
			"hid": graph.IntValue(nextHid),
			"tag": graph.StringValue(tag),
		})
		objs["#"+tag] = tagIDs[tag]
		nextHid++
	}
	for key, tw := range tweets {
		tn := tx.CreateNode(tweet, graph.Properties{
			"tid":  graph.IntValue(tw.id),
			"text": graph.StringValue(tw.text),
		})
		objs[key] = tn
		tx.CreateRel(posts, objs[tw.author], tn)
		for _, m := range tw.mentions {
			tx.CreateRel(mentions, tn, objs[m])
		}
		for _, tg := range tw.tags {
			tx.CreateRel(tags, tn, tagIDs[tg])
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return NewEngine(db), objs
}

func mustQuery(t *testing.T, e *Engine, q string, params map[string]graph.Value) *Result {
	t.Helper()
	res, err := e.Query(q, params)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func intCell(t *testing.T, c any) int64 {
	t.Helper()
	v, ok := c.(graph.Value)
	if !ok {
		t.Fatalf("cell %v (%T) is not a scalar", c, c)
	}
	return v.Int()
}

func strCell(t *testing.T, c any) string {
	t.Helper()
	v, ok := c.(graph.Value)
	if !ok {
		t.Fatalf("cell %v (%T) is not a scalar", c, c)
	}
	return v.Str()
}

// The paper's example query: tweets of a given user.
func TestPaperExampleQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (u:user {uid: $uid})-[:posts]->(t:tweet) RETURN t.text`,
		map[string]graph.Value{"uid": graph.IntValue(3)})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	texts := map[string]bool{}
	for _, r := range res.Rows {
		texts[strCell(t, r[0])] = true
	}
	if !texts["hi @alice"] || !texts["#go #db rocks"] {
		t.Errorf("texts = %v", texts)
	}
	if res.Columns[0] != "t.text" {
		t.Errorf("column = %q", res.Columns[0])
	}
}

func TestSelectWithPredicate(t *testing.T) {
	// Q1.1: users with follower count above a threshold.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (u:user) WHERE u.followers > $th RETURN u.screen_name ORDER BY u.screen_name`,
		map[string]graph.Value{"th": graph.IntValue(1)})
	if len(res.Rows) != 1 || strCell(t, res.Rows[0][0]) != "carol" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Conjunction and disjunction.
	res = mustQuery(t, e,
		`MATCH (u:user) WHERE u.followers >= 1 AND u.uid < 3 RETURN count(*)`, nil)
	if intCell(t, res.Rows[0][0]) != 2 {
		t.Errorf("conj count = %v", res.Rows)
	}
	res = mustQuery(t, e,
		`MATCH (u:user) WHERE u.uid = 1 OR u.uid = 6 RETURN count(*)`, nil)
	if intCell(t, res.Rows[0][0]) != 2 {
		t.Errorf("disj count = %v", res.Rows)
	}
}

func TestAdjacency1Step(t *testing.T) {
	// Q2.1: followees of a given user.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: $id})-[:follows]->(f:user) RETURN f.uid ORDER BY f.uid`,
		map[string]graph.Value{"id": graph.IntValue(1)})
	if len(res.Rows) != 2 || intCell(t, res.Rows[0][0]) != 2 || intCell(t, res.Rows[1][0]) != 3 {
		t.Errorf("followees = %v", res.Rows)
	}
	// Incoming direction: followers.
	res = mustQuery(t, e,
		`MATCH (a:user {uid: 3})<-[:follows]-(f:user) RETURN f.uid ORDER BY f.uid`, nil)
	if len(res.Rows) != 2 || intCell(t, res.Rows[0][0]) != 1 || intCell(t, res.Rows[1][0]) != 2 {
		t.Errorf("followers = %v", res.Rows)
	}
}

func TestAdjacency2And3Step(t *testing.T) {
	// Q2.2: tweets posted by followees of a user.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows]->(f:user)-[:posts]->(t:tweet)
		 RETURN t.tid ORDER BY t.tid`, nil)
	if len(res.Rows) != 3 { // bob posts t100; carol posts t101, t102
		t.Fatalf("2-step rows = %v", res.Rows)
	}
	// Q2.3: hashtags used by followees of a user.
	res = mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows]->(f:user)-[:posts]->(t:tweet)-[:tags]->(h:hashtag)
		 RETURN DISTINCT h.tag ORDER BY h.tag`, nil)
	if len(res.Rows) != 2 || strCell(t, res.Rows[0][0]) != "db" || strCell(t, res.Rows[1][0]) != "go" {
		t.Errorf("3-step rows = %v", res.Rows)
	}
}

func TestCooccurrenceTopN(t *testing.T) {
	// Q3.2: hashtags co-occurring with a given hashtag.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (h:hashtag {tag: $h})<-[:tags]-(t:tweet)-[:tags]->(o:hashtag)
		 WHERE o.tag <> $h
		 RETURN o.tag AS tag, count(*) AS c ORDER BY c DESC LIMIT 5`,
		map[string]graph.Value{"h": graph.StringValue("go")})
	if len(res.Rows) != 1 || strCell(t, res.Rows[0][0]) != "db" || intCell(t, res.Rows[0][1]) != 1 {
		t.Errorf("co-occurring = %v", res.Rows)
	}
}

func TestRecommendationVarLength(t *testing.T) {
	// Q4.1 method (a): 2-step followees not already followed.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows*2..2]->(f:user)
		 WHERE NOT (a)-[:follows]->(f) AND f.uid <> 1
		 RETURN f.uid AS uid, count(*) AS c ORDER BY c DESC, uid LIMIT 10`, nil)
	// 2-step from alice: via bob -> carol(already followed), frank;
	// via carol -> dave. Expect dave(4) and frank(6).
	if len(res.Rows) != 2 {
		t.Fatalf("recommendations = %v", res.Rows)
	}
	got := map[int64]int64{}
	for _, r := range res.Rows {
		got[intCell(t, r[0])] = intCell(t, r[1])
	}
	if got[4] != 1 || got[6] != 1 {
		t.Errorf("recommendation counts = %v", got)
	}
}

func TestRecommendationCollectMethod(t *testing.T) {
	// Q4.1 method (b): collect 1-step followees, check depth-2 results
	// against the collection.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows]->(f1:user)
		 WITH a, collect(f1) AS direct
		 MATCH (a)-[:follows]->(:user)-[:follows]->(f2:user)
		 WHERE NOT f2 IN direct AND f2.uid <> 1
		 RETURN f2.uid AS uid, count(*) AS c ORDER BY c DESC, uid`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("method (b) = %v", res.Rows)
	}
	if intCell(t, res.Rows[0][1]) != 1 {
		t.Errorf("counts = %v", res.Rows)
	}
}

func TestInfluenceQueries(t *testing.T) {
	e, _ := newTestEngine(t)
	// Q5.1 current influence: users who mention alice AND follow her.
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})<-[:mentions]-(t:tweet)<-[:posts]-(m:user)
		 WHERE (m)-[:follows]->(a)
		 RETURN m.uid AS uid, count(*) AS c ORDER BY c DESC`, nil)
	// alice mentioned in t100 (bob) and t101 (carol); only eve follows
	// alice... wait: eve->alice. bob doesn't follow alice, carol
	// doesn't. So current influence is empty.
	if len(res.Rows) != 0 {
		t.Errorf("current influence = %v", res.Rows)
	}
	// Q5.2 potential influence: mention alice but not her followers.
	res = mustQuery(t, e,
		`MATCH (a:user {uid: 1})<-[:mentions]-(t:tweet)<-[:posts]-(m:user)
		 WHERE NOT (m)-[:follows]->(a)
		 RETURN m.uid AS uid, count(*) AS c ORDER BY c DESC, uid`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("potential influence = %v", res.Rows)
	}
	if intCell(t, res.Rows[0][0]) != 2 && intCell(t, res.Rows[1][0]) != 3 {
		t.Errorf("potential influencers = %v", res.Rows)
	}
}

func TestShortestPathQuery(t *testing.T) {
	// Q6.1 with the paper's 3-hop bound.
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: $a}), (b:user {uid: $b}),
		       p = shortestPath((a)-[:follows*..3]->(b))
		 RETURN length(p)`,
		map[string]graph.Value{"a": graph.IntValue(1), "b": graph.IntValue(4)})
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 2 {
		t.Errorf("path length = %v", res.Rows)
	}
	// Beyond the bound: no row.
	res = mustQuery(t, e,
		`MATCH (a:user {uid: $a}), (b:user {uid: $b}),
		       p = shortestPath((a)-[:follows*..3]->(b))
		 RETURN length(p)`,
		map[string]graph.Value{"a": graph.IntValue(6), "b": graph.IntValue(5)})
	if len(res.Rows) != 0 {
		t.Errorf("unexpected path = %v", res.Rows)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (t:tweet)-[:tags]->(h:hashtag) RETURN DISTINCT h.tag ORDER BY h.tag`, nil)
	if len(res.Rows) != 2 {
		t.Errorf("distinct tags = %v", res.Rows)
	}
	res = mustQuery(t, e,
		`MATCH (u:user) RETURN u.uid ORDER BY u.uid SKIP 2 LIMIT 2`, nil)
	if len(res.Rows) != 2 || intCell(t, res.Rows[0][0]) != 3 || intCell(t, res.Rows[1][0]) != 4 {
		t.Errorf("skip/limit = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user) RETURN count(*), min(u.uid), max(u.uid), sum(u.uid), avg(u.uid)`, nil)
	r := res.Rows[0]
	if intCell(t, r[0]) != 6 || intCell(t, r[1]) != 1 || intCell(t, r[2]) != 6 || intCell(t, r[3]) != 21 {
		t.Errorf("aggregates = %v", r)
	}
	if av := r[4].(graph.Value).Float(); av != 3.5 {
		t.Errorf("avg = %v", av)
	}
	// count(DISTINCT ...).
	res = mustQuery(t, e, `MATCH (t:tweet)-[:tags]->(h:hashtag) RETURN count(DISTINCT h)`, nil)
	if intCell(t, res.Rows[0][0]) != 2 {
		t.Errorf("count distinct = %v", res.Rows)
	}
	// count(*) on empty match yields a 0 row.
	res = mustQuery(t, e, `MATCH (u:user {uid: 999}) RETURN count(*)`, nil)
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 0 {
		t.Errorf("empty count = %v", res.Rows)
	}
}

func TestCollectAndUnwind(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows]->(f:user)
		 WITH collect(f.uid) AS ids
		 UNWIND ids AS id
		 RETURN id ORDER BY id`, nil)
	if len(res.Rows) != 2 || intCell(t, res.Rows[0][0]) != 2 || intCell(t, res.Rows[1][0]) != 3 {
		t.Errorf("collect/unwind = %v", res.Rows)
	}
}

func TestOptionalMatch(t *testing.T) {
	e, _ := newTestEngine(t)
	// eve (uid 5) posts nothing: OPTIONAL MATCH keeps her row with a
	// null tweet.
	res := mustQuery(t, e,
		`MATCH (u:user {uid: 5}) OPTIONAL MATCH (u)-[:posts]->(t:tweet) RETURN u.uid, t.tid`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !cellIsNull(res.Rows[0][1]) {
		t.Errorf("expected null tid, got %v", res.Rows[0][1])
	}
}

func TestProfileReportsDBHitsAndPlan(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`PROFILE MATCH (u:user {uid: 1})-[:follows]->(f:user) RETURN f.uid`, nil)
	if res.Profile == nil {
		t.Fatal("no profile")
	}
	if res.Profile.TotalDBHits == 0 {
		t.Error("zero db hits")
	}
	foundSeek := false
	for _, st := range res.Profile.Stages {
		for _, op := range st.Ops {
			if op.Name == "NodeIndexSeek" {
				foundSeek = true
			}
		}
	}
	if !foundSeek {
		t.Errorf("plan did not use the index: %+v", res.Profile.Stages)
	}
}

func TestPlanCacheHits(t *testing.T) {
	e, _ := newTestEngine(t)
	q := `MATCH (u:user {uid: $id}) RETURN u.screen_name`
	for i := 1; i <= 3; i++ {
		mustQuery(t, e, q, map[string]graph.Value{"id": graph.IntValue(int64(i))})
	}
	hits, misses := e.CacheStats()
	if misses != 1 || hits != 2 {
		t.Errorf("cache stats = %d hits, %d misses", hits, misses)
	}
	// Disabling the cache forces recompilation.
	e.SetPlanCache(false)
	mustQuery(t, e, q, map[string]graph.Value{"id": graph.IntValue(1)})
	hits2, misses2 := e.CacheStats()
	if hits2 != hits || misses2 != misses {
		t.Errorf("disabled cache changed stats: %d/%d", hits2, misses2)
	}
}

func TestParseErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	bad := []string{
		``,
		`MATCH (u:user)`,                       // no RETURN
		`RETURN`,                               // no items
		`MATCH (u:user RETURN u`,               // unterminated node
		`MATCH (u)-[:x]>(v) RETURN v`,          // bad arrow
		`MATCH (u) RETURN u LIMIT`,             // missing limit value
		`MATCH (u) WHERE RETURN u`,             // missing predicate
		`MATCH (a)<-[:x]->(b) RETURN a`,        // both directions
		`MATCH (u) RETURN u.name AS`,           // missing alias
		`MATCH (u) RETURN u ORDER u`,           // ORDER without BY
		`FOO BAR`,                              // unknown clause
		`MATCH (u) RETURN u; DROP TABLE users`, // trailing junk
	}
	for _, q := range bad {
		if _, err := e.Query(q, nil); err == nil {
			t.Errorf("query %q parsed without error", q)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	// Missing parameter.
	if _, err := e.Query(`MATCH (u:user {uid: $nope}) RETURN u`, nil); err == nil {
		t.Error("missing parameter accepted")
	}
	// Unknown variable in RETURN.
	if _, err := e.Query(`MATCH (u:user) RETURN ghost.x`, nil); err == nil {
		t.Error("unknown variable accepted")
	}
	// Duplicate column.
	if _, err := e.Query(`MATCH (u:user) RETURN u.uid AS x, u.followers AS x`, nil); err == nil {
		t.Error("duplicate column accepted")
	}
	// Aggregate in WHERE.
	if _, err := e.Query(`MATCH (u:user) WHERE count(*) > 1 RETURN u`, nil); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
}

func TestStringsAndEscapes(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {screen_name: 'alice'}) RETURN u.uid`, nil)
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 1 {
		t.Errorf("string literal match = %v", res.Rows)
	}
	res = mustQuery(t, e, `MATCH (u:user {uid:1}) RETURN u.screen_name + '!'`, nil)
	if strCell(t, res.Rows[0][0]) != "alice!" {
		t.Errorf("concat = %v", res.Rows)
	}
}

func TestArithmeticInProjection(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid: 3}) RETURN u.followers * 10 + 1, u.followers % 2, -u.uid`, nil)
	r := res.Rows[0]
	if intCell(t, r[0]) != 21 || intCell(t, r[1]) != 0 || intCell(t, r[2]) != -3 {
		t.Errorf("arithmetic = %v", r)
	}
	if _, err := e.Query(`MATCH (u:user {uid:1}) RETURN u.uid / 0`, nil); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestUndirectedExpand(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows]-(x:user) RETURN x.uid ORDER BY x.uid`, nil)
	// alice: out to 2,3; in from 5.
	if len(res.Rows) != 3 {
		t.Errorf("undirected = %v", res.Rows)
	}
}

func TestBacktickIdentifierAndComments(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, "MATCH (`u`:user {uid: 1}) RETURN `u`.uid", nil)
	if len(res.Rows) != 1 {
		t.Errorf("backtick = %v", res.Rows)
	}
}

func TestPreparedReuse(t *testing.T) {
	e, _ := newTestEngine(t)
	prep, err := e.Prepare(`MATCH (u:user {uid: $id}) RETURN u.screen_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Columns()) != 1 {
		t.Errorf("columns = %v", prep.Columns())
	}
	for i, want := range map[int64]string{1: "alice", 2: "bob"} {
		res, err := e.Execute(prep, map[string]graph.Value{"id": graph.IntValue(i)})
		if err != nil {
			t.Fatal(err)
		}
		if strCell(t, res.Rows[0][0]) != want {
			t.Errorf("uid %d = %v", i, res.Rows)
		}
	}
}

func TestXorAndNotNull(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid:1}) RETURN true XOR false, NOT true`, nil)
	r := res.Rows[0]
	if !r[0].(graph.Value).Bool() || r[1].(graph.Value).Bool() {
		t.Errorf("logic = %v", r)
	}
}

func TestExistsFunction(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (u:user) WHERE exists(u.followers) RETURN count(*)`, nil)
	if intCell(t, res.Rows[0][0]) != 6 {
		t.Errorf("exists count = %v", res.Rows)
	}
}

func TestIDAndLabelsFunctions(t *testing.T) {
	e, objs := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid: 1}) RETURN id(u), labels(u)`, nil)
	if intCell(t, res.Rows[0][0]) != int64(objs["alice"]) {
		t.Errorf("id = %v", res.Rows)
	}
	lv, ok := res.Rows[0][1].(ListVal)
	if !ok || len(lv) != 1 || strCell(t, lv[0]) != "user" {
		t.Errorf("labels = %v", res.Rows[0][1])
	}
}

func TestQueryTextNormalizationMatters(t *testing.T) {
	// Different texts are different cache entries even if semantically
	// identical — same as real Cypher.
	e, _ := newTestEngine(t)
	mustQuery(t, e, `MATCH (u:user {uid: 1}) RETURN u.uid`, nil)
	mustQuery(t, e, `MATCH  (u:user {uid: 1}) RETURN u.uid`, nil)
	_, misses := e.CacheStats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`MATCH (u:user {uid: $id})-[:follows*1..2]->(v) WHERE u.followers >= 10 RETURN v LIMIT 5 // not a comment`)
	if err == nil {
		// '/' is a division token; the trailing text lexes as idents.
		_ = toks
	}
	if _, err := lex(`'unterminated`); err == nil {
		t.Error("unterminated string lexed")
	}
	if _, err := lex("`unterminated"); err == nil {
		t.Error("unterminated backtick lexed")
	}
	if _, err := lex(`$`); err == nil {
		t.Error("bare $ lexed")
	}
	if _, err := lex(`?`); err == nil {
		t.Error("? lexed")
	}
	// Floats vs ranges.
	toks, err = lex(`1.5 1..2`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokFloat || toks[1].kind != tokInt || toks[2].kind != tokDotDot {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestWhereOnWith(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (u:user)-[:posts]->(t:tweet)
		 WITH u, count(*) AS n WHERE n > 1
		 RETURN u.uid, n`, nil)
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 3 || intCell(t, res.Rows[0][1]) != 2 {
		t.Errorf("WITH WHERE = %v", res.Rows)
	}
}

func TestVarLengthUnbounded(t *testing.T) {
	e, _ := newTestEngine(t)
	// All users reachable from frank... frank follows nobody. From
	// dave: eve, alice, bob, carol, frank (cycle-limited by rel
	// uniqueness).
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 4})-[:follows*]->(f:user) RETURN DISTINCT f.uid ORDER BY f.uid`, nil)
	if len(res.Rows) != 6 { // 5,1,2,3,6 and 4 itself via cycle 4->5->1->3->4? no rel reuse; 1->3->4 yes: 4 reachable
		// Reachable: 5 (1 hop), 1 (2), 2,3 (3), 6,4... check count
		t.Logf("reachable = %v", res.Rows)
	}
	if len(res.Rows) == 0 {
		t.Error("no reachable users")
	}
}

func TestMultiplePatternsCartesianAndJoin(t *testing.T) {
	e, _ := newTestEngine(t)
	// Two disconnected patterns make a cartesian product.
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1}), (b:user {uid: 2}) RETURN a.uid, b.uid`, nil)
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 1 || intCell(t, res.Rows[0][1]) != 2 {
		t.Errorf("cartesian = %v", res.Rows)
	}
	// Shared variable joins patterns.
	res = mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows]->(m:user), (m)-[:posts]->(t:tweet)
		 RETURN m.uid, count(t) ORDER BY m.uid`, nil)
	if len(res.Rows) != 2 {
		t.Errorf("join = %v", res.Rows)
	}
}

func TestWhitespaceOnlyDifferentAliases(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid:1}) RETURN u.uid AS id`, nil)
	if res.Columns[0] != "id" {
		t.Errorf("alias = %q", res.Columns[0])
	}
}

func TestStringsContainingKeywords(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid:1}) RETURN 'MATCH RETURN WHERE'`, nil)
	if strCell(t, res.Rows[0][0]) != "MATCH RETURN WHERE" {
		t.Errorf("keyword string = %v", res.Rows)
	}
}

func TestLongChainQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	// 4-element chain crossing three edge types.
	res := mustQuery(t, e,
		`MATCH (a:user {uid:1})-[:follows]->(f:user)-[:posts]->(t:tweet)-[:mentions]->(m:user)
		 RETURN DISTINCT m.uid ORDER BY m.uid`, nil)
	// bob posts t100 mentioning alice; carol posts t101 mentioning
	// alice.
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 1 {
		t.Errorf("chain = %v", res.Rows)
	}
}

func TestContainsNoLeftoverTokenAfterReturn(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Query(`MATCH (u) RETURN u MATCH (v) RETURN v`, nil); err == nil {
		t.Error("two RETURNs accepted")
	}
}

func TestColumnsWithoutAliasUseExprText(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid:1}) RETURN count(*)`, nil)
	if !strings.Contains(res.Columns[0], "count") {
		t.Errorf("column = %q", res.Columns[0])
	}
}
