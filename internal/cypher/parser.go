package cypher

import (
	"fmt"
	"strconv"

	"twigraph/internal/graph"
)

// Parse parses a query string into an AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind tokenKind) bool {
	if p.cur().kind == kind {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errorf("expected %s, found %q", what, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("cypher: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.acceptKeyword("PROFILE") {
		q.Profiled = true
	} else if p.acceptKeyword("EXPLAIN") {
		q.Profiled = true
	}
	sawReturn := false
	for {
		switch {
		case p.acceptKeyword("OPTIONAL"):
			if !p.acceptKeyword("MATCH") {
				return nil, p.errorf("expected MATCH after OPTIONAL")
			}
			c, err := p.parseMatch(true)
			if err != nil {
				return nil, err
			}
			q.Clauses = append(q.Clauses, c)
		case p.acceptKeyword("MATCH"):
			c, err := p.parseMatch(false)
			if err != nil {
				return nil, err
			}
			q.Clauses = append(q.Clauses, c)
		case p.acceptKeyword("UNWIND"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AS") {
				return nil, p.errorf("expected AS in UNWIND")
			}
			name, err := p.expect(tokIdent, "identifier")
			if err != nil {
				return nil, err
			}
			q.Clauses = append(q.Clauses, &UnwindClause{Expr: e, Alias: name.text})
		case p.acceptKeyword("WITH"):
			c, err := p.parseProjection(false)
			if err != nil {
				return nil, err
			}
			q.Clauses = append(q.Clauses, c)
		case p.acceptKeyword("RETURN"):
			c, err := p.parseProjection(true)
			if err != nil {
				return nil, err
			}
			q.Clauses = append(q.Clauses, c)
			sawReturn = true
		default:
			if p.cur().kind == tokEOF {
				if !sawReturn {
					return nil, p.errorf("query must end with RETURN")
				}
				return q, nil
			}
			return nil, p.errorf("unexpected token %q", p.cur().text)
		}
		if sawReturn && p.cur().kind != tokEOF {
			return nil, p.errorf("tokens after RETURN clause: %q", p.cur().text)
		}
	}
}

func (p *parser) parseMatch(optional bool) (*MatchClause, error) {
	c := &MatchClause{Optional: optional}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		c.Patterns = append(c.Patterns, pat)
		if !p.accept(tokComma) {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Where = e
	}
	return c, nil
}

func (p *parser) parsePattern() (Pattern, error) {
	var pat Pattern
	// Optional "p =" prefix.
	if p.cur().kind == tokIdent && p.peek().kind == tokEq {
		pat.Name = p.advance().text
		p.advance() // =
	}
	// shortestPath(...) wrapper.
	if p.cur().kind == tokIdent && (p.cur().text == "shortestPath" || p.cur().text == "shortestpath") {
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return pat, err
		}
		pat.ShortestPath = true
		parts, err := p.parseChain()
		if err != nil {
			return pat, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return pat, err
		}
		pat.Parts = parts
		return pat, nil
	}
	parts, err := p.parseChain()
	if err != nil {
		return pat, err
	}
	pat.Parts = parts
	return pat, nil
}

// parseChain parses node (rel node)*.
func (p *parser) parseChain() ([]PatternPart, error) {
	var parts []PatternPart
	n, err := p.parseNodePattern()
	if err != nil {
		return nil, err
	}
	parts = append(parts, PatternPart{Node: n})
	for p.cur().kind == tokDash || p.cur().kind == tokLArrow {
		r, err := p.parseRelPattern()
		if err != nil {
			return nil, err
		}
		n, err := p.parseNodePattern()
		if err != nil {
			return nil, err
		}
		parts = append(parts, PatternPart{IsRel: true, Rel: r}, PatternPart{Node: n})
	}
	return parts, nil
}

func (p *parser) parseNodePattern() (NodePattern, error) {
	var n NodePattern
	if _, err := p.expect(tokLParen, "("); err != nil {
		return n, err
	}
	if p.cur().kind == tokIdent {
		n.Var = p.advance().text
	}
	if p.accept(tokColon) {
		lbl, err := p.expect(tokIdent, "label")
		if err != nil {
			return n, err
		}
		n.Label = lbl.text
	}
	if p.accept(tokLBrace) {
		for {
			key, err := p.expect(tokIdent, "property key")
			if err != nil {
				return n, err
			}
			if _, err := p.expect(tokColon, ":"); err != nil {
				return n, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return n, err
			}
			n.Props = append(n.Props, PropMatch{Key: key.text, Expr: e})
			if !p.accept(tokComma) {
				break
			}
		}
		if _, err := p.expect(tokRBrace, "}"); err != nil {
			return n, err
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return n, err
	}
	return n, nil
}

func (p *parser) parseRelPattern() (RelPattern, error) {
	r := RelPattern{Dir: graph.Any, MinHops: 1, MaxHops: 1}
	leftArrow := false
	switch p.cur().kind {
	case tokLArrow: // <-
		leftArrow = true
		p.advance()
	case tokDash:
		p.advance()
	default:
		return r, p.errorf("expected relationship pattern")
	}
	if p.accept(tokLBrack) {
		if p.cur().kind == tokIdent {
			r.Var = p.advance().text
		}
		if p.accept(tokColon) {
			typ, err := p.expect(tokIdent, "relationship type")
			if err != nil {
				return r, err
			}
			r.Type = typ.text
		}
		if p.accept(tokStar) {
			// *n, *n..m, *..m, * (unbounded)
			r.MinHops, r.MaxHops = 1, -1
			if p.cur().kind == tokInt {
				n, _ := strconv.Atoi(p.advance().text)
				r.MinHops, r.MaxHops = n, n
			}
			if p.accept(tokDotDot) {
				r.MaxHops = -1
				if p.cur().kind == tokInt {
					m, _ := strconv.Atoi(p.advance().text)
					r.MaxHops = m
				}
			}
		}
		if _, err := p.expect(tokRBrack, "]"); err != nil {
			return r, err
		}
	}
	// Closing dash / arrow.
	switch p.cur().kind {
	case tokArrow: // ->
		if leftArrow {
			return r, p.errorf("relationship cannot point both ways")
		}
		r.Dir = graph.Outgoing
		p.advance()
	case tokDash:
		if leftArrow {
			r.Dir = graph.Incoming
		} else {
			r.Dir = graph.Any
		}
		p.advance()
	default:
		return r, p.errorf("unterminated relationship pattern")
	}
	return r, nil
}

func (p *parser) parseProjection(final bool) (*WithClause, error) {
	c := &WithClause{Final: final}
	if p.acceptKeyword("DISTINCT") {
		c.Distinct = true
	}
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		c.Items = append(c.Items, item)
		if !p.accept(tokComma) {
			break
		}
	}
	if !final && p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Where = e
	}
	if p.acceptKeyword("ORDER") {
		if !p.acceptKeyword("BY") {
			return nil, p.errorf("expected BY after ORDER")
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SortItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			c.OrderBy = append(c.OrderBy, item)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if p.acceptKeyword("SKIP") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Skip = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Limit = e
	}
	return c, nil
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	start := p.cur().pos
	e, err := p.parseExpr()
	if err != nil {
		return ReturnItem{}, err
	}
	item := ReturnItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expect(tokIdent, "alias")
		if err != nil {
			return ReturnItem{}, err
		}
		item.Alias = alias.text
	} else {
		end := p.cur().pos
		if end > len(p.src) {
			end = len(p.src)
		}
		item.Alias = trimSpaces(p.src[start:end])
	}
	return item, nil
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\n' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\n' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}

// ---------- expressions (precedence climbing) ----------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("XOR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "XOR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokEq:
			op = "="
		case tokNeq:
			op = "<>"
		case tokLt:
			op = "<"
		case tokLte:
			op = "<="
		case tokGt:
			op = ">"
		case tokGte:
			op = ">="
		case tokKeyword:
			if p.cur().text == "IN" {
				op = "IN"
			}
		}
		if op == "" {
			return l, nil
		}
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokPlus:
			op = "+"
		case tokDash:
			op = "-"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		case tokPct:
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokDash {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "-", X: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return &Lit{graph.IntValue(i)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.text)
		}
		return &Lit{graph.FloatValue(f)}, nil
	case tokString:
		p.advance()
		return &Lit{graph.StringValue(t.text)}, nil
	case tokParam:
		p.advance()
		return &Param{t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return &Lit{graph.BoolValue(true)}, nil
		case "FALSE":
			p.advance()
			return &Lit{graph.BoolValue(false)}, nil
		case "NULL":
			p.advance()
			return &Lit{graph.NilValue}, nil
		case "COUNT", "COLLECT", "EXISTS":
			return p.parseFuncCall()
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		// Function call or variable (with optional .prop).
		if p.peek().kind == tokLParen {
			return p.parseFuncCall()
		}
		p.advance()
		if p.accept(tokDot) {
			key, err := p.expect(tokIdent, "property key")
			if err != nil {
				return nil, err
			}
			return &PropAccess{Var: t.text, Key: key.text}, nil
		}
		return &Var{t.text}, nil
	case tokLParen:
		// Either a parenthesised expression or a pattern predicate
		// like (a)-[:follows]->(b). Disambiguate with bounded
		// lookahead: "(ident)" or "(ident:label" followed by -/<-.
		if p.isPatternAhead() {
			parts, err := p.parseChain()
			if err != nil {
				return nil, err
			}
			return &PatternPred{Parts: parts}, nil
		}
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

// isPatternAhead reports whether the upcoming tokens begin a pattern
// predicate rather than a parenthesised expression.
func (p *parser) isPatternAhead() bool {
	// Scan from the current '(' to its matching ')' allowing only the
	// shape of a node pattern, then require '-' or '<-'.
	i := p.pos
	if p.toks[i].kind != tokLParen {
		return false
	}
	i++
	depth := 1
	for i < len(p.toks) && depth > 0 {
		switch p.toks[i].kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
		case tokEOF:
			return false
		}
		i++
	}
	if i >= len(p.toks) {
		return false
	}
	k := p.toks[i].kind
	return k == tokDash || k == tokLArrow
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := p.advance().text
	fc := &FuncCall{Name: lowerASCII(name)}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	if p.accept(tokStar) {
		fc.Star = true
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	if p.cur().kind != tokRParen {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
