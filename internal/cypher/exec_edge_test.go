package cypher

import (
	"testing"

	"twigraph/internal/graph"
)

// Edge cases of the pipeline executor that the workload queries don't
// reach.

func TestOptionalMatchWithMultipleMatches(t *testing.T) {
	e, _ := newTestEngine(t)
	// carol posts two tweets: OPTIONAL MATCH multiplies her row.
	res := mustQuery(t, e,
		`MATCH (u:user {uid: 3}) OPTIONAL MATCH (u)-[:posts]->(t:tweet) RETURN t.tid ORDER BY t.tid`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// OPTIONAL MATCH with a WHERE that kills all matches still emits a
	// null row.
	res = mustQuery(t, e,
		`MATCH (u:user {uid: 3}) OPTIONAL MATCH (u)-[:posts]->(t:tweet) WHERE t.tid > 9999 RETURN u.uid, t.tid`, nil)
	if len(res.Rows) != 1 || !cellIsNull(res.Rows[0][1]) {
		t.Fatalf("optional+where rows = %v", res.Rows)
	}
}

func TestUnwindNullAndScalar(t *testing.T) {
	e, _ := newTestEngine(t)
	// UNWIND of a null drops the row.
	res := mustQuery(t, e,
		`MATCH (u:user {uid: 5}) OPTIONAL MATCH (u)-[:posts]->(t:tweet)
		 WITH collect(t.tid) AS ids
		 UNWIND ids AS id RETURN id`, nil)
	if len(res.Rows) != 0 {
		t.Errorf("unwind of empty collect = %v", res.Rows)
	}
	// UNWIND of a scalar treats it as a one-element list.
	res = mustQuery(t, e, `MATCH (u:user {uid: 1}) WITH u.uid AS x UNWIND x AS y RETURN y`, nil)
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 1 {
		t.Errorf("unwind scalar = %v", res.Rows)
	}
}

func TestInWithNonListIsFalse(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user {uid: 1}) RETURN 1 IN u.uid`, nil)
	if res.Rows[0][0].(graph.Value).Bool() {
		t.Error("IN non-list returned true")
	}
}

func TestShortestPathUnboundEndpointRejected(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Query(`MATCH p = shortestPath((a)-[:follows*..3]->(b)) RETURN p`, nil); err == nil {
		t.Error("unbound shortestPath endpoints accepted")
	}
}

func TestNamedPathOutsideShortestPathRejected(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Query(`MATCH p = (a:user)-[:follows]->(b) RETURN p`, nil); err == nil {
		t.Error("named non-shortestPath pattern accepted")
	}
}

func TestSkipBeyondResultSet(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user) RETURN u.uid ORDER BY u.uid SKIP 100`, nil)
	if len(res.Rows) != 0 {
		t.Errorf("skip-beyond = %v", res.Rows)
	}
	if _, err := e.Query(`MATCH (u:user) RETURN u LIMIT -1`, nil); err == nil {
		t.Error("negative LIMIT accepted")
	}
}

func TestOrderByNullsLast(t *testing.T) {
	e, _ := newTestEngine(t)
	// Users without posts get null counts via OPTIONAL MATCH + WITH.
	res := mustQuery(t, e,
		`MATCH (u:user) OPTIONAL MATCH (u)-[:posts]->(t:tweet)
		 WITH u.uid AS uid, t.tid AS tid
		 RETURN uid, tid ORDER BY tid, uid`, nil)
	// Null tids must sort after real tids.
	sawNull := false
	for _, r := range res.Rows {
		if cellIsNull(r[1]) {
			sawNull = true
		} else if sawNull {
			t.Fatalf("non-null after null: %v", res.Rows)
		}
	}
	if !sawNull {
		t.Fatal("no null rows produced")
	}
}

func TestDistinctOnNodes(t *testing.T) {
	e, _ := newTestEngine(t)
	// carol reached twice from alice (direct + via bob) — DISTINCT on
	// the node binding dedups.
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows*1..2]->(f:user) RETURN count(f), count(DISTINCT f)`, nil)
	all := intCell(t, res.Rows[0][0])
	distinct := intCell(t, res.Rows[0][1])
	if all <= distinct {
		t.Errorf("count %d vs distinct %d: multigraph paths not visible", all, distinct)
	}
}

func TestExpandIntoBoundTarget(t *testing.T) {
	e, _ := newTestEngine(t)
	// Both endpoints bound: the expand verifies rather than enumerates.
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1}), (b:user {uid: 2}) MATCH (a)-[:follows]->(b) RETURN count(*)`, nil)
	if intCell(t, res.Rows[0][0]) != 1 {
		t.Errorf("expand-into = %v", res.Rows)
	}
	res = mustQuery(t, e,
		`MATCH (a:user {uid: 2}), (b:user {uid: 1}) MATCH (a)-[:follows]->(b) RETURN count(*)`, nil)
	if intCell(t, res.Rows[0][0]) != 0 {
		t.Errorf("reverse expand-into = %v", res.Rows)
	}
}

func TestWhereOnRelationshipVariable(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[r:follows]->(b:user) WHERE id(r) > 0 RETURN count(r)`, nil)
	if intCell(t, res.Rows[0][0]) != 2 {
		t.Errorf("rel var rows = %v", res.Rows)
	}
}
