// Package cypher implements the declarative query layer of the
// Neo4j-analog engine: a Cypher-subset language with a lexer, parser,
// cost-based planner, pipelined executor, plan cache and profiler.
//
// The subset covers everything the paper's workload needs:
//
//	MATCH (u:user {uid: $uid})-[:posts]->(t:tweet) RETURN t.text
//	MATCH (a:user {uid:$u})-[:follows*2..2]->(f) WHERE NOT (a)-[:follows]->(f)
//	  RETURN f.uid, count(*) AS c ORDER BY c DESC LIMIT 10
//	MATCH p = shortestPath((a)-[:follows*..3]->(b)) RETURN length(p)
//
// including variable-length expansion, pattern predicates, WITH
// pipelines, DISTINCT, aggregation (count, collect), ORDER BY, SKIP and
// LIMIT, and $parameters. Parameterised queries share cached execution
// plans, reproducing the paper's observation that "a good speedup can be
// achieved by specifying parameters, because it allows Cypher to cache
// the execution plans".
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam  // $name
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokLBrace // {
	tokRBrace // }
	tokComma
	tokColon
	tokDot
	tokDotDot // ..
	tokStar
	tokPlus
	tokDash  // -
	tokArrow // ->
	tokLArrow
	tokEq    // =
	tokNeq   // <>
	tokLt    // <
	tokLte   // <=
	tokGt    // >
	tokGte   // >=
	tokPipe  // |
	tokSlash // /
	tokPct   // %
)

// keywords recognised case-insensitively.
var keywords = map[string]bool{
	"MATCH": true, "OPTIONAL": true, "WHERE": true, "RETURN": true,
	"WITH": true, "ORDER": true, "BY": true, "SKIP": true, "LIMIT": true,
	"DISTINCT": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"XOR": true, "ASC": true, "DESC": true, "TRUE": true, "FALSE": true,
	"NULL": true, "IN": true, "PROFILE": true, "EXPLAIN": true,
	"COUNT": true, "COLLECT": true, "EXISTS": true, "UNWIND": true,
}

type token struct {
	kind tokenKind
	text string // identifier/keyword/literal text (keywords uppercased)
	pos  int    // byte offset for error reporting
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenises the whole query up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '[':
		l.pos++
		return token{tokLBrack, "[", start}, nil
	case c == ']':
		l.pos++
		return token{tokRBrack, "]", start}, nil
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == ':':
		l.pos++
		return token{tokColon, ":", start}, nil
	case c == '|':
		l.pos++
		return token{tokPipe, "|", start}, nil
	case c == '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case c == '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case c == '%':
		l.pos++
		return token{tokPct, "%", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{tokDotDot, "..", start}, nil
		}
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{tokArrow, "->", start}, nil
		}
		l.pos++
		return token{tokDash, "-", start}, nil
	case c == '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case c == '<':
		if l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '>':
				l.pos += 2
				return token{tokNeq, "<>", start}, nil
			case '=':
				l.pos += 2
				return token{tokLte, "<=", start}, nil
			case '-':
				l.pos += 2
				return token{tokLArrow, "<-", start}, nil
			}
		}
		l.pos++
		return token{tokLt, "<", start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokGte, ">=", start}, nil
		}
		l.pos++
		return token{tokGt, ">", start}, nil
	case c == '$':
		l.pos++
		id := l.ident()
		if id == "" {
			return token{}, fmt.Errorf("cypher: empty parameter name at %d", start)
		}
		return token{tokParam, id, start}, nil
	case c == '\'' || c == '"':
		return l.stringLit(c)
	case c >= '0' && c <= '9':
		return l.number()
	case isIdentStart(c):
		id := l.ident()
		up := strings.ToUpper(id)
		if keywords[up] {
			return token{tokKeyword, up, start}, nil
		}
		return token{tokIdent, id, start}, nil
	case c == '`':
		// Backtick-quoted identifier.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '`')
		if end < 0 {
			return token{}, fmt.Errorf("cypher: unterminated quoted identifier at %d", start)
		}
		id := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{tokIdent, id, start}, nil
	}
	return token{}, fmt.Errorf("cypher: unexpected character %q at %d", c, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) number() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	// A float has a single '.' followed by digits ('..' is a range).
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] != '.' &&
		l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{tokFloat, l.src[start:l.pos], start}, nil
	}
	return token{tokInt, l.src[start:l.pos], start}, nil
}

func (l *lexer) stringLit(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(next)
			default:
				sb.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		if c == quote {
			l.pos++
			return token{tokString, sb.String(), start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("cypher: unterminated string at %d", start)
}
