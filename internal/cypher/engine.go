package cypher

import (
	"context"
	"sync"
	"time"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/obs"
	"twigraph/internal/qstats"
	"twigraph/internal/spmat"
)

// Engine executes queries against a neodb database. It owns the plan
// cache: parameterised query texts compile once and reuse their plans,
// the speedup source the paper highlights. The cache can be disabled to
// measure recompilation cost (ablation B).
type Engine struct {
	db *neodb.DB

	mu          sync.Mutex
	cache       map[string]*Prepared
	cacheOn     bool
	cacheHits   uint64
	cacheMisses uint64
	method      spmat.Method

	spm *spmat.Metrics
}

// NewEngine creates an engine with the plan cache enabled.
func NewEngine(db *neodb.DB) *Engine {
	return &Engine{db: db, cache: make(map[string]*Prepared), cacheOn: true,
		spm: spmat.MetricsFrom(db.Obs())}
}

// SetExecMethod selects how eligible var-length expansions execute:
// nav (the default DFS enumeration), matrix (the algebraic row-gather
// of internal/spmat), or auto (per-expansion density gate). Plans are
// unaffected — the choice is per-execution state, so cached plans
// honour the current setting.
func (e *Engine) SetExecMethod(m spmat.Method) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.method = m
}

// ExecMethod returns the configured execution method.
func (e *Engine) ExecMethod() spmat.Method {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.method
}

// DB returns the underlying database.
func (e *Engine) DB() *neodb.DB { return e.db }

// SetPlanCache enables or disables the plan cache (clearing it when
// disabling).
func (e *Engine) SetPlanCache(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheOn = on
	if !on {
		e.cache = make(map[string]*Prepared)
	}
}

// CacheStats returns plan-cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheHits, e.cacheMisses
}

// Result is a materialised query result.
type Result struct {
	Columns []string
	Rows    [][]any
	Profile *ProfileInfo // non-nil for PROFILE queries
}

// ProfileInfo is the execution profile of a PROFILE query: per-stage
// operator breakdowns, row counts, db hits and wall time — the
// introspection the paper uses to rephrase queries "for the least
// number of database hits".
type ProfileInfo struct {
	Stages      []StageProfile
	TotalDBHits uint64
	PlanCached  bool
	Compile     time.Duration
	Execute     time.Duration
	// Root is the root span's wall time for the whole execution; the
	// per-stage Elapsed values sum to (at most) this, the remainder
	// being row materialisation outside any stage.
	Root time.Duration
}

// StageProfile profiles one pipeline stage.
type StageProfile struct {
	Name    string
	Ops     []OperatorProfile // per-operator breakdown (match stages)
	Rows    int               // rows produced
	DBHits  uint64
	Elapsed time.Duration // cumulative stage wall time
	// Self is the stage time not attributed to any operator — loop
	// overhead, WHERE filtering, row widening. For stages without an
	// operator breakdown, Self equals Elapsed.
	Self time.Duration
}

// OperatorProfile is one operator's share of a stage: its wall time,
// db hits and rows produced, accumulated across every input row the
// stage pushed through it.
type OperatorProfile struct {
	Name    string
	Rows    int
	DBHits  uint64
	Elapsed time.Duration
}

// Query parses (or reuses) and executes a query.
func (e *Engine) Query(query string, params map[string]graph.Value) (*Result, error) {
	return e.QueryCtx(nil, query, params)
}

// QueryCtx is Query bounded by ctx: execution polls the context at row
// granularity and aborts with a wrapped context error once it is
// cancelled or past its deadline. The abort is counted into the
// engine's queries_cancelled / queries_timed_out counters. A nil ctx
// never aborts.
func (e *Engine) QueryCtx(ctx context.Context, query string, params map[string]graph.Value) (*Result, error) {
	prep, cached, compileTime, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	return e.execute(ctx, prep, params, cached, compileTime)
}

// Prepare compiles a query (or fetches it from the plan cache) without
// executing it.
func (e *Engine) Prepare(query string) (*Prepared, error) {
	prep, _, _, err := e.prepare(query)
	return prep, err
}

// Execute runs a previously prepared plan.
func (e *Engine) Execute(prep *Prepared, params map[string]graph.Value) (*Result, error) {
	return e.execute(nil, prep, params, true, 0)
}

// ExecuteCtx runs a previously prepared plan bounded by ctx, with
// QueryCtx's abort semantics.
func (e *Engine) ExecuteCtx(ctx context.Context, prep *Prepared, params map[string]graph.Value) (*Result, error) {
	return e.execute(ctx, prep, params, true, 0)
}

func (e *Engine) prepare(query string) (*Prepared, bool, time.Duration, error) {
	e.mu.Lock()
	if e.cacheOn {
		if prep, ok := e.cache[query]; ok {
			e.cacheHits++
			e.mu.Unlock()
			return prep, true, 0, nil
		}
		e.cacheMisses++
	}
	e.mu.Unlock()

	start := time.Now()
	ast, err := Parse(query)
	if err != nil {
		return nil, false, 0, err
	}
	prep, err := compile(e.db, ast, query)
	if err != nil {
		return nil, false, 0, err
	}
	// Model the cost of planning: parsing and compilation already cost
	// real work above; nothing is simulated.
	compileTime := time.Since(start)

	e.mu.Lock()
	if e.cacheOn {
		e.cache[query] = prep
	}
	e.mu.Unlock()
	return prep, false, compileTime, nil
}

func (e *Engine) execute(ctx context.Context, prep *Prepared, params map[string]graph.Value, cached bool, compileTime time.Duration) (*Result, error) {
	ec := &execCtx{db: e.db, ctx: ctx, params: params, profileOps: prep.profiled,
		method: e.ExecMethod(), spm: e.spm}
	res := &Result{Columns: prep.columns}
	var prof *ProfileInfo
	if prep.profiled {
		prof = &ProfileInfo{PlanCached: cached, Compile: compileTime}
	}

	// Workload attribution: reuse the query ID an outer layer (the
	// store wrapper) put on the context, or allocate one for ad-hoc
	// executions (twiql, direct engine callers). The execution is
	// recorded into the engine's per-fingerprint statistics unless the
	// outer layer marked itself as the accounting site — the guard that
	// keeps one store query from counting twice.
	stats := e.db.QueryStats()
	qid := qstats.QueryID(ctx)
	if qid == 0 {
		qid = qstats.NextQueryID()
	}
	account := !qstats.Accounted(ctx)
	var handle qstats.Handle
	var qstart time.Time
	if account {
		handle = stats.Begin()
		qstart = time.Now()
	}

	// PROFILE and tracing share one mechanism: a root span for the query
	// with one child span per pipeline stage. Stage db hits are the
	// span's watched record-fetch delta, so the profiler reports exactly
	// what the engine registry counted. When the tracer is enabled the
	// root span also feeds the slow-query log; when the trace buffer is
	// enabled, every span becomes a timeline event.
	tr := e.db.Tracer()
	// Accounting-suppressed executions with no enclosing span (a silent
	// replay of a retried wire query) trace nothing: a root span here
	// would put a second slow-ring entry under the same query ID.
	traced := prof != nil || (tr.Enabled() && (account || tr.InSpan()))
	var root *obs.Span
	if traced {
		root = tr.Start("cypher: " + prep.text)
		root.SetQuery(qid, prep.fp.Hash)
	}

	rows := []row{{}}
	execStart := time.Now()
	for _, st := range prep.stages {
		var span *obs.Span
		if traced {
			span = tr.Start(st.name())
		}
		ec.ops = nil
		var err error
		rows, err = st.run(ec, rows)
		if span != nil {
			span.SetStatus(obs.StatusFromError(err))
			span.SetRows(len(rows))
			span.Finish()
		}
		if err != nil {
			if root != nil {
				root.SetStatus(obs.StatusFromError(err))
				root.Finish()
			}
			if account {
				stats.Record(prep.fp, time.Since(qstart), 0, obs.StatusFromError(err), handle)
			}
			return nil, err
		}
		if prof != nil {
			sp := StageProfile{
				Name:    st.name(),
				Rows:    len(rows),
				DBHits:  span.Delta(obs.CRecordFetches),
				Elapsed: span.Duration(),
			}
			sp.Self = sp.Elapsed
			for _, op := range ec.ops {
				sp.Ops = append(sp.Ops, OperatorProfile{
					Name: op.name, Rows: op.rows, DBHits: op.dbHits, Elapsed: op.elapsed,
				})
				sp.Self -= op.elapsed
			}
			if sp.Self < 0 {
				sp.Self = 0
			}
			prof.Stages = append(prof.Stages, sp)
		}
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []any(r))
	}
	if root != nil {
		root.SetRows(len(res.Rows))
		root.Finish()
		if prof != nil {
			prof.TotalDBHits = root.Delta(obs.CRecordFetches)
			prof.Root = root.Duration()
		}
	}
	if prof != nil {
		prof.Execute = time.Since(execStart)
		res.Profile = prof
	}
	if account {
		stats.Record(prep.fp, time.Since(qstart), len(res.Rows), obs.StatusCompleted, handle)
	}
	return res, nil
}
