package cypher

import (
	"sync"
	"time"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
)

// Engine executes queries against a neodb database. It owns the plan
// cache: parameterised query texts compile once and reuse their plans,
// the speedup source the paper highlights. The cache can be disabled to
// measure recompilation cost (ablation B).
type Engine struct {
	db *neodb.DB

	mu          sync.Mutex
	cache       map[string]*Prepared
	cacheOn     bool
	cacheHits   uint64
	cacheMisses uint64
}

// NewEngine creates an engine with the plan cache enabled.
func NewEngine(db *neodb.DB) *Engine {
	return &Engine{db: db, cache: make(map[string]*Prepared), cacheOn: true}
}

// DB returns the underlying database.
func (e *Engine) DB() *neodb.DB { return e.db }

// SetPlanCache enables or disables the plan cache (clearing it when
// disabling).
func (e *Engine) SetPlanCache(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheOn = on
	if !on {
		e.cache = make(map[string]*Prepared)
	}
}

// CacheStats returns plan-cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheHits, e.cacheMisses
}

// Result is a materialised query result.
type Result struct {
	Columns []string
	Rows    [][]any
	Profile *ProfileInfo // non-nil for PROFILE queries
}

// ProfileInfo is the execution profile of a PROFILE query: per-stage
// operator lists, row counts, db hits and wall time — the introspection
// the paper uses to rephrase queries "for the least number of database
// hits".
type ProfileInfo struct {
	Stages      []StageProfile
	TotalDBHits uint64
	PlanCached  bool
	Compile     time.Duration
	Execute     time.Duration
}

// StageProfile profiles one pipeline stage.
type StageProfile struct {
	Name    string
	Ops     []string // operator names inside the stage
	Rows    int      // rows produced
	DBHits  uint64
	Elapsed time.Duration
}

// Query parses (or reuses) and executes a query.
func (e *Engine) Query(query string, params map[string]graph.Value) (*Result, error) {
	prep, cached, compileTime, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	return e.execute(prep, params, cached, compileTime)
}

// Prepare compiles a query (or fetches it from the plan cache) without
// executing it.
func (e *Engine) Prepare(query string) (*Prepared, error) {
	prep, _, _, err := e.prepare(query)
	return prep, err
}

// Execute runs a previously prepared plan.
func (e *Engine) Execute(prep *Prepared, params map[string]graph.Value) (*Result, error) {
	return e.execute(prep, params, true, 0)
}

func (e *Engine) prepare(query string) (*Prepared, bool, time.Duration, error) {
	e.mu.Lock()
	if e.cacheOn {
		if prep, ok := e.cache[query]; ok {
			e.cacheHits++
			e.mu.Unlock()
			return prep, true, 0, nil
		}
		e.cacheMisses++
	}
	e.mu.Unlock()

	start := time.Now()
	ast, err := Parse(query)
	if err != nil {
		return nil, false, 0, err
	}
	prep, err := compile(e.db, ast, query)
	if err != nil {
		return nil, false, 0, err
	}
	// Model the cost of planning: parsing and compilation already cost
	// real work above; nothing is simulated.
	compileTime := time.Since(start)

	e.mu.Lock()
	if e.cacheOn {
		e.cache[query] = prep
	}
	e.mu.Unlock()
	return prep, false, compileTime, nil
}

func (e *Engine) execute(prep *Prepared, params map[string]graph.Value, cached bool, compileTime time.Duration) (*Result, error) {
	ec := &execCtx{db: e.db, params: params}
	res := &Result{Columns: prep.columns}
	var prof *ProfileInfo
	if prep.profiled {
		prof = &ProfileInfo{PlanCached: cached, Compile: compileTime}
	}

	rows := []row{{}}
	execStart := time.Now()
	for _, st := range prep.stages {
		var stageStart time.Time
		var hitsBefore uint64
		if prof != nil {
			stageStart = time.Now()
			hitsBefore = e.db.DBHits()
		}
		var err error
		rows, err = st.run(ec, rows)
		if err != nil {
			return nil, err
		}
		if prof != nil {
			sp := StageProfile{
				Name:    st.name(),
				Rows:    len(rows),
				DBHits:  e.db.DBHits() - hitsBefore,
				Elapsed: time.Since(stageStart),
			}
			if ms, ok := st.(*matchStage); ok {
				for _, s := range ms.steps {
					sp.Ops = append(sp.Ops, s.describe())
				}
			}
			prof.TotalDBHits += sp.DBHits
			prof.Stages = append(prof.Stages, sp)
		}
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []any(r))
	}
	if prof != nil {
		prof.Execute = time.Since(execStart)
		res.Profile = prof
	}
	return res, nil
}
