package cypher

import (
	"context"
	"fmt"
	"sort"
	"time"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/spmat"
)

// execCtx carries per-execution state: the engine's database handle,
// the bounding context (nil when unbounded), query parameters, and a
// property-key name cache.
type execCtx struct {
	db     *neodb.DB
	ctx    context.Context
	params map[string]graph.Value
	ticks  uint

	// Algebraic execution: the engine's method knob snapshot for this
	// execution, plan-choice counters, and a dense-accumulator pool for
	// eligible var-length expansions. Per-execution state, never on the
	// (cached, shared) plan steps.
	method  spmat.Method
	spm     *spmat.Metrics
	accPool spmat.AccumPool

	// PROFILE per-operator accounting: when profileOps is set, a match
	// stage fills ops with one accumulator per step, summed across every
	// input row. The engine reads (and resets) ops after each stage;
	// curStep is the index of the step currently applying, so operators
	// that pick an execution path at run time can rename their
	// accumulator ("VarLengthExpand(matrix)").
	profileOps bool
	ops        []opAcc
	curStep    int
}

// opAcc accumulates one operator's PROFILE measurements: wall time,
// db-hit delta and rows produced, across all input rows of its stage.
type opAcc struct {
	name    string
	rows    int
	dbHits  uint64
	elapsed time.Duration
}

func (ec *execCtx) propKey(name string) graph.AttrID {
	return ec.db.PropKeyID(name)
}

// ctxErr polls the bounding context and, on abort, counts it (exactly
// once, at this detection site) and returns a wrapped error. Errors
// that bubble up from nested engine calls were already counted where
// they were detected and must be propagated, not re-classified.
func (ec *execCtx) ctxErr() error {
	if ec.ctx == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		ec.db.CountQueryAbort(err)
		return fmt.Errorf("cypher: query aborted: %w", err)
	}
	return nil
}

// tick is ctxErr on a stride, cheap enough to call from per-record emit
// callbacks inside scan and expand loops.
func (ec *execCtx) tick() error {
	ec.ticks++
	if ec.ticks&1023 != 0 {
		return nil
	}
	return ec.ctxErr()
}

// stage is one pipeline segment: it consumes materialised rows and
// produces materialised rows.
type stage interface {
	run(ec *execCtx, in []row) ([]row, error)
	name() string
}

// ---------- match stage ----------

type matchStage struct {
	optional bool
	steps    []step
	where    Expr
	vars     *varMap
	width    int
}

func (st *matchStage) name() string { return "Match" }

func (st *matchStage) run(ec *execCtx, in []row) ([]row, error) {
	if ec.profileOps {
		ec.ops = make([]opAcc, len(st.steps))
		for i, s := range st.steps {
			ec.ops[i].name = s.describe()
		}
	}
	var out []row
	for _, r := range in {
		if err := ec.ctxErr(); err != nil {
			return nil, err
		}
		// Widen the row to this stage's slot count.
		base := make(row, st.width)
		copy(base, r)
		rows := []row{base}
		for i, s := range st.steps {
			var err error
			if ec.profileOps {
				ec.curStep = i
				start := time.Now()
				hits := ec.db.RecordFetches()
				rows, err = s.apply(ec, rows)
				ec.ops[i].elapsed += time.Since(start)
				ec.ops[i].dbHits += ec.db.RecordFetches() - hits
				ec.ops[i].rows += len(rows)
			} else {
				rows, err = s.apply(ec, rows)
			}
			if err != nil {
				return nil, err
			}
			if len(rows) == 0 {
				break
			}
		}
		if st.where != nil {
			filtered := rows[:0]
			for _, rr := range rows {
				v, err := evalExpr(ec, st.vars, st.where, rr)
				if err != nil {
					return nil, err
				}
				if cellTruth(v) {
					filtered = append(filtered, rr)
				}
			}
			rows = filtered
		}
		if len(rows) == 0 && st.optional {
			rows = []row{base} // unmatched vars stay nil
		}
		out = append(out, rows...)
	}
	return out, nil
}

// step is one primitive operation inside a match stage.
type step interface {
	apply(ec *execCtx, in []row) ([]row, error)
	describe() string
}

type stepIndexSeek struct {
	slot  int
	label graph.TypeID
	key   graph.AttrID
	val   Expr
}

func (s *stepIndexSeek) describe() string { return "NodeIndexSeek" }

func (s *stepIndexSeek) apply(ec *execCtx, in []row) ([]row, error) {
	var out []row
	for _, r := range in {
		v, err := evalExpr(ec, nil, s.val, r)
		if err != nil {
			return nil, err
		}
		gv, ok := v.(graph.Value)
		if !ok {
			return nil, fmt.Errorf("cypher: index seek value is not a scalar")
		}
		ids := ec.db.FindNodes(s.label, s.key, gv)
		if ids == nil {
			continue
		}
		var abort error
		ids.ForEach(func(id uint64) bool {
			if abort = ec.tick(); abort != nil {
				return false
			}
			nr := cloneRow(r)
			nr[s.slot] = NodeRef(id)
			out = append(out, nr)
			return true
		})
		if abort != nil {
			return nil, abort
		}
	}
	return out, nil
}

type stepLabelScan struct {
	slot  int
	label graph.TypeID
}

func (s *stepLabelScan) describe() string { return "NodeByLabelScan" }

func (s *stepLabelScan) apply(ec *execCtx, in []row) ([]row, error) {
	var out []row
	for _, r := range in {
		nodes := ec.db.NodesByLabel(s.label)
		if nodes == nil {
			continue
		}
		var abort error
		nodes.ForEach(func(id uint64) bool {
			if abort = ec.tick(); abort != nil {
				return false
			}
			nr := cloneRow(r)
			nr[s.slot] = NodeRef(id)
			out = append(out, nr)
			return true
		})
		if abort != nil {
			return nil, abort
		}
	}
	return out, nil
}

type stepAllNodes struct{ slot int }

func (s *stepAllNodes) describe() string { return "AllNodesScan" }

func (s *stepAllNodes) apply(ec *execCtx, in []row) ([]row, error) {
	// Enumerate all labels through the label scan store.
	var out []row
	for _, r := range in {
		for label := graph.TypeID(1); ; label++ {
			if ec.db.LabelName(label) == "" {
				break
			}
			nodes := ec.db.NodesByLabel(label)
			if nodes == nil {
				continue
			}
			var abort error
			nodes.ForEach(func(id uint64) bool {
				if abort = ec.tick(); abort != nil {
					return false
				}
				nr := cloneRow(r)
				nr[s.slot] = NodeRef(id)
				out = append(out, nr)
				return true
			})
			if abort != nil {
				return nil, abort
			}
		}
	}
	return out, nil
}

type stepLabelFilter struct {
	slot  int
	label graph.TypeID
}

func (s *stepLabelFilter) describe() string { return "Filter(label)" }

func (s *stepLabelFilter) apply(ec *execCtx, in []row) ([]row, error) {
	out := in[:0]
	for _, r := range in {
		ref, ok := r[s.slot].(NodeRef)
		if !ok {
			continue
		}
		n, err := ec.db.NodeByID(graph.NodeID(ref))
		if err != nil {
			continue
		}
		if n.Label == s.label {
			out = append(out, r)
		}
	}
	return out, nil
}

type stepPropFilter struct {
	slot int
	key  string
	val  Expr
}

func (s *stepPropFilter) describe() string { return "Filter(property)" }

func (s *stepPropFilter) apply(ec *execCtx, in []row) ([]row, error) {
	key := ec.propKey(s.key)
	out := in[:0]
	for _, r := range in {
		ref, ok := r[s.slot].(NodeRef)
		if !ok {
			continue
		}
		want, err := evalExpr(ec, nil, s.val, r)
		if err != nil {
			return nil, err
		}
		got, err := ec.db.NodeProp(graph.NodeID(ref), key)
		if err != nil {
			continue
		}
		if wv, ok := want.(graph.Value); ok && got.Equal(wv) {
			out = append(out, r)
		}
	}
	return out, nil
}

type stepExpand struct {
	fromSlot, toSlot, relSlot int
	relType                   string
	dir                       graph.Direction
	minHops, maxHops          int
	toBound                   bool
}

func (s *stepExpand) describe() string {
	if s.maxHops != 1 || s.minHops != 1 {
		return "VarLengthExpand"
	}
	if s.toBound {
		return "ExpandInto"
	}
	return "Expand"
}

func (s *stepExpand) apply(ec *execCtx, in []row) ([]row, error) {
	t := graph.NilType
	if s.relType != "" {
		t = ec.db.RelTypeID(s.relType)
		if t == graph.NilType {
			return nil, nil // unknown type matches nothing
		}
	}
	var out []row
	for _, r := range in {
		from, ok := r[s.fromSlot].(NodeRef)
		if !ok {
			continue
		}
		if s.matrixEligible(ec) {
			var handled bool
			var merr error
			out, handled, merr = s.expandMatrix(ec, r, graph.NodeID(from), t, out)
			if merr != nil {
				return nil, merr
			}
			if handled {
				continue
			}
		}
		err := expandPaths(ec, graph.NodeID(from), t, s.dir, s.minHops, s.maxHops,
			func(end graph.NodeID, rels []graph.EdgeID) bool {
				if s.toBound {
					want, ok := r[s.toSlot].(NodeRef)
					if !ok || graph.NodeID(want) != end {
						return true
					}
				}
				nr := cloneRow(r)
				nr[s.toSlot] = NodeRef(end)
				if s.relSlot >= 0 {
					if len(rels) == 1 {
						nr[s.relSlot] = RelRef(rels[0])
					} else {
						lv := make(ListVal, len(rels))
						for i, e := range rels {
							lv[i] = RelRef(e)
						}
						nr[s.relSlot] = lv
					}
				}
				out = append(out, nr)
				return true
			})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// expandPaths enumerates every path of length [minHops, maxHops] from
// start following rels of type t in direction dir, with
// relationship-uniqueness per path (Cypher semantics). fn receives the
// path's end node and relationship ids; returning false stops the
// enumeration.
func expandPaths(ec *execCtx, start graph.NodeID, t graph.TypeID, dir graph.Direction, minHops, maxHops int, fn func(graph.NodeID, []graph.EdgeID) bool) error {
	db := ec.db
	if maxHops < 0 {
		maxHops = 15
	}
	var rels []graph.EdgeID
	used := map[graph.EdgeID]bool{}
	stop := false
	var abortErr error
	var dfs func(cur graph.NodeID, depth int) error
	dfs = func(cur graph.NodeID, depth int) error {
		if stop {
			return nil
		}
		if err := ec.tick(); err != nil {
			return err
		}
		if depth >= minHops && depth > 0 {
			if !fn(cur, rels) {
				stop = true
				return nil
			}
		}
		if depth >= maxHops {
			return nil
		}
		err := db.Relationships(cur, t, dir, func(r neodb.Rel) bool {
			if stop || used[r.ID] {
				return !stop
			}
			next := r.Dst
			if next == cur && r.Src != r.Dst {
				next = r.Src
			}
			used[r.ID] = true
			rels = append(rels, r.ID)
			if err := dfs(next, depth+1); err != nil {
				abortErr = err
				return false
			}
			rels = rels[:len(rels)-1]
			delete(used, r.ID)
			return !stop
		})
		if err != nil {
			return err
		}
		return abortErr
	}
	if minHops == 0 {
		if !fn(start, nil) {
			return nil
		}
	}
	return dfs(start, 0)
}

type stepShortestPath struct {
	pathSlot, fromSlot, toSlot int
	relType                    string
	dir                        graph.Direction
	maxHops                    int
}

func (s *stepShortestPath) describe() string { return "ShortestPath" }

func (s *stepShortestPath) apply(ec *execCtx, in []row) ([]row, error) {
	t := graph.NilType
	if s.relType != "" {
		t = ec.db.RelTypeID(s.relType)
	}
	var out []row
	for _, r := range in {
		from, ok1 := r[s.fromSlot].(NodeRef)
		to, ok2 := r[s.toSlot].(NodeRef)
		if !ok1 || !ok2 {
			continue
		}
		p, found, err := ec.db.ShortestPathCtx(ec.ctx, graph.NodeID(from), graph.NodeID(to),
			[]neodb.Expander{{Type: t, Dir: s.dir}}, s.maxHops)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		nr := cloneRow(r)
		if s.pathSlot >= 0 {
			nr[s.pathSlot] = PathVal{Nodes: p.Nodes, Rels: p.Rels}
		}
		out = append(out, nr)
	}
	return out, nil
}

func cloneRow(r row) row {
	nr := make(row, len(r))
	copy(nr, r)
	return nr
}

// ---------- unwind stage ----------

type unwindStage struct {
	expr    Expr
	vars    *varMap
	outSlot int
	width   int
}

func (st *unwindStage) name() string { return "Unwind" }

func (st *unwindStage) run(ec *execCtx, in []row) ([]row, error) {
	var out []row
	for _, r := range in {
		if err := ec.ctxErr(); err != nil {
			return nil, err
		}
		v, err := evalExpr(ec, st.vars, st.expr, r)
		if err != nil {
			return nil, err
		}
		list, ok := v.(ListVal)
		if !ok {
			if cellIsNull(v) {
				continue
			}
			list = ListVal{v}
		}
		for _, item := range list {
			nr := make(row, st.width)
			copy(nr, r)
			nr[st.outSlot] = item
			out = append(out, nr)
		}
	}
	return out, nil
}

// ---------- projection stage (WITH / RETURN) ----------

type projectStage struct {
	clause  *WithClause
	inVars  *varMap
	outVars *varMap
	hasAgg  bool
}

func (st *projectStage) name() string {
	if st.clause.Final {
		return "Return"
	}
	return "With"
}

// projRow pairs a projected output row with a representative input row
// so ORDER BY can reference pre-projection variables (Cypher allows
// `RETURN f.uid ORDER BY f.followers`).
type projRow struct {
	out row
	in  row
}

func (st *projectStage) run(ec *execCtx, in []row) ([]row, error) {
	var rows []projRow
	var err error
	if st.hasAgg {
		rows, err = st.aggregate(ec, in)
	} else {
		rows = make([]projRow, 0, len(in))
		for _, r := range in {
			if err := ec.ctxErr(); err != nil {
				return nil, err
			}
			nr := make(row, len(st.clause.Items))
			for i, it := range st.clause.Items {
				nr[i], err = evalExpr(ec, st.inVars, it.Expr, r)
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, projRow{out: nr, in: r})
		}
	}
	if err != nil {
		return nil, err
	}
	// DISTINCT.
	if st.clause.Distinct {
		seen := map[string]bool{}
		dedup := rows[:0]
		for _, r := range rows {
			k := rowKey(r.out)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, r)
			}
		}
		rows = dedup
	}
	// WITH ... WHERE (post-projection filter).
	if st.clause.Where != nil {
		filtered := rows[:0]
		for _, r := range rows {
			v, err := st.evalPost(ec, st.clause.Where, r)
			if err != nil {
				return nil, err
			}
			if cellTruth(v) {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}
	// ORDER BY: expressions may reference projected aliases or (for
	// non-aggregating projections) original variables.
	if len(st.clause.OrderBy) > 0 {
		keys := make([][]any, len(rows))
		for i, r := range rows {
			ks := make([]any, len(st.clause.OrderBy))
			for j, si := range st.clause.OrderBy {
				v, err := st.evalPost(ec, si.Expr, r)
				if err != nil {
					return nil, err
				}
				ks[j] = v
			}
			keys[i] = ks
		}
		idxs := make([]int, len(rows))
		for i := range idxs {
			idxs[i] = i
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			for j, si := range st.clause.OrderBy {
				c := cellCompare(keys[idxs[a]][j], keys[idxs[b]][j])
				if c != 0 {
					if si.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		sorted := make([]projRow, len(rows))
		for i, ix := range idxs {
			sorted[i] = rows[ix]
		}
		rows = sorted
	}
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = r.out
	}
	// SKIP / LIMIT.
	if st.clause.Skip != nil {
		n, err := evalInt(ec, st.outVars, st.clause.Skip, nil)
		if err != nil {
			return nil, err
		}
		if n >= len(out) {
			out = nil
		} else {
			out = out[n:]
		}
	}
	if st.clause.Limit != nil {
		n, err := evalInt(ec, st.outVars, st.clause.Limit, nil)
		if err != nil {
			return nil, err
		}
		if n < len(out) {
			out = out[:n]
		}
	}
	return out, nil
}

func rowKey(r row) string {
	k := ""
	for _, c := range r {
		k += cellKey(c) + "|"
	}
	return k
}

// evalPost evaluates a post-projection expression (WHERE-on-WITH or
// ORDER BY). If the expression's text names a projected alias, the
// projected cell is used; otherwise, for non-aggregating projections,
// the expression is evaluated against the representative input row.
func (st *projectStage) evalPost(ec *execCtx, e Expr, r projRow) (any, error) {
	if txt := exprText(e); txt != "" {
		if slot, ok := st.outVars.lookup(txt); ok {
			return r.out[slot], nil
		}
	}
	if st.hasAgg || r.in == nil {
		// Only aliases (and expressions over them) are visible after
		// aggregation.
		return evalExpr(ec, st.outVars, e, r.out)
	}
	// Try the original bindings first; fall back to aliases.
	v, err := evalExpr(ec, st.inVars, e, r.in)
	if err != nil {
		return evalExpr(ec, st.outVars, e, r.out)
	}
	return v, nil
}

// exprText renders simple expressions to their canonical source text for
// alias matching (Var "c" -> "c", PropAccess u.uid -> "u.uid").
func exprText(e Expr) string {
	switch x := e.(type) {
	case *Var:
		return x.Name
	case *PropAccess:
		return x.Var + "." + x.Key
	}
	return ""
}

// aggregate groups rows by the non-aggregate items and evaluates the
// aggregate items per group.
func (st *projectStage) aggregate(ec *execCtx, in []row) ([]projRow, error) {
	type group struct {
		keyCells []any
		rows     []row
	}
	groups := map[string]*group{}
	var order []string

	var keyItems, aggItems []int
	for i, it := range st.clause.Items {
		if hasAggregate(it.Expr) {
			aggItems = append(aggItems, i)
		} else {
			keyItems = append(keyItems, i)
		}
	}
	for _, r := range in {
		if err := ec.ctxErr(); err != nil {
			return nil, err
		}
		cells := make([]any, len(keyItems))
		k := ""
		for j, idx := range keyItems {
			v, err := evalExpr(ec, st.inVars, st.clause.Items[idx].Expr, r)
			if err != nil {
				return nil, err
			}
			cells[j] = v
			k += cellKey(v) + "|"
		}
		g, ok := groups[k]
		if !ok {
			g = &group{keyCells: cells}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	// Aggregation over zero rows with no grouping keys yields one row
	// (count(*) = 0).
	if len(in) == 0 && len(keyItems) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	var out []projRow
	for _, k := range order {
		g := groups[k]
		nr := make(row, len(st.clause.Items))
		for j, idx := range keyItems {
			nr[idx] = g.keyCells[j]
		}
		for _, idx := range aggItems {
			v, err := evalAggregate(ec, st.inVars, st.clause.Items[idx].Expr, g.rows)
			if err != nil {
				return nil, err
			}
			nr[idx] = v
		}
		var rep row
		if len(g.rows) > 0 {
			rep = g.rows[0]
		}
		out = append(out, projRow{out: nr, in: rep})
	}
	return out, nil
}
