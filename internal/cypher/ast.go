package cypher

import "twigraph/internal/graph"

// Query is a parsed query: a sequence of reading clauses ending in
// RETURN. Profiled indicates a PROFILE prefix.
type Query struct {
	Profiled bool
	Clauses  []Clause
}

// Clause is a MATCH, WITH or RETURN clause.
type Clause interface{ clause() }

// MatchClause is MATCH <patterns> [WHERE <expr>].
type MatchClause struct {
	Optional bool
	Patterns []Pattern
	Where    Expr // nil when absent
}

// WithClause is WITH/RETURN: a projection stage with optional
// DISTINCT, post-projection WHERE (WITH only), ordering and paging.
// RETURN is represented as a WithClause with Final=true.
type WithClause struct {
	Final    bool // RETURN
	Distinct bool
	Items    []ReturnItem
	Where    Expr // WITH ... WHERE
	OrderBy  []SortItem
	Skip     Expr
	Limit    Expr
}

// UnwindClause is UNWIND <expr> AS <var>.
type UnwindClause struct {
	Expr  Expr
	Alias string
}

func (*MatchClause) clause()  {}
func (*WithClause) clause()   {}
func (*UnwindClause) clause() {}

// ReturnItem is one projection item.
type ReturnItem struct {
	Expr  Expr
	Alias string // defaults to the expression text
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr Expr
	Desc bool
}

// Pattern is one comma-separated pattern in a MATCH, optionally named
// (p = ...) and optionally a shortestPath(...) call.
type Pattern struct {
	Name         string // "" unless "p = ..."
	ShortestPath bool
	Parts        []PatternPart
}

// PatternPart alternates nodes and relationships; Parts[0] is always a
// node, then rel, node, rel, node...
type PatternPart struct {
	IsRel bool
	Node  NodePattern
	Rel   RelPattern
}

// NodePattern is (var:label {key: expr, ...}).
type NodePattern struct {
	Var   string
	Label string
	Props []PropMatch
}

// PropMatch is one {key: expr} entry.
type PropMatch struct {
	Key  string
	Expr Expr
}

// RelPattern is -[var:type*min..max]-> (or <-...-, or undirected).
type RelPattern struct {
	Var     string
	Type    string
	Dir     graph.Direction // Outgoing: ->, Incoming: <-, Any: --
	MinHops int             // default 1
	MaxHops int             // default 1; -1 = unbounded
}

// ---------- expressions ----------

// Expr is an expression AST node.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ Val graph.Value }

// Param is a $parameter reference.
type Param struct{ Name string }

// Var is a variable reference.
type Var struct{ Name string }

// PropAccess is var.key.
type PropAccess struct {
	Var string
	Key string
}

// BinOp is a binary operation.
type BinOp struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "XOR", "+", "-", "*", "/", "%", "IN"
	L, R Expr
}

// UnaryOp is NOT or unary minus.
type UnaryOp struct {
	Op string // "NOT", "-"
	X  Expr
}

// FuncCall is a function application: count, collect, length, id,
// size, exists.
type FuncCall struct {
	Name     string // lowercase
	Star     bool   // count(*)
	Distinct bool   // count(DISTINCT x)
	Args     []Expr
}

// PatternPred is a pattern used as a boolean predicate, e.g.
// WHERE NOT (a)-[:follows]->(f).
type PatternPred struct{ Parts []PatternPart }

func (*Lit) expr()         {}
func (*Param) expr()       {}
func (*Var) expr()         {}
func (*PropAccess) expr()  {}
func (*BinOp) expr()       {}
func (*UnaryOp) expr()     {}
func (*FuncCall) expr()    {}
func (*PatternPred) expr() {}

// hasAggregate reports whether the expression contains an aggregate
// function call (count/collect/sum/min/max/avg).
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if isAggregateFunc(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *BinOp:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *UnaryOp:
		return hasAggregate(x.X)
	}
	return false
}

func isAggregateFunc(name string) bool {
	switch name {
	case "count", "collect", "sum", "min", "max", "avg":
		return true
	}
	return false
}
