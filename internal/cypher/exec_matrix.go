package cypher

import (
	"sort"

	"twigraph/internal/graph"
	"twigraph/internal/par"
	"twigraph/internal/spmat"
)

// Algebraic execution of eligible var-length expansions. A depth-2
// expansion that binds only its end node is exactly one row of a
// masked SpGEMM — the DFS enumerates every (e1, e2) path individually,
// while the gather computes the same per-end-node path counts from the
// weighted first-hop frontier in two row sweeps. The engine's method
// knob and the density gate decide per input row; the DFS stays the
// semantic reference and the fallback.

// matrixEligible reports whether this expansion step can run
// algebraically: a fixed depth-2 bound, directed, end-node-only
// binding. Expansions that bind relationship variables need edge
// identities the gather does not track, and unbounded depths (>= 3)
// admit edge-revisiting walks whose per-path relationship uniqueness
// has no algebraic counterpart.
func (s *stepExpand) matrixEligible(ec *execCtx) bool {
	return ec.method != spmat.MethodNav &&
		s.maxHops == 2 && (s.minHops == 1 || s.minHops == 2) &&
		s.relSlot < 0 && !s.toBound &&
		(s.dir == graph.Outgoing || s.dir == graph.Incoming)
}

// expandMatrix expands one input row algebraically, appending result
// rows to out. handled=false sends the row to the DFS instead: the
// gate chose navigational execution for a sparse frontier, or the
// anchor has a self-loop (a loop edge could be reused at both hops,
// which Cypher's per-path relationship uniqueness forbids — only the
// DFS tracks edge identity).
func (s *stepExpand) expandMatrix(ec *execCtx, r row, from graph.NodeID, t graph.TypeID, out []row) ([]row, bool, error) {
	src := ec.db.RelSource(t, s.dir)
	g := spmat.NewGate(int(ec.db.NodeCount()), int(ec.db.NodeCount()), int(ec.db.RelCount()))
	// Auto mode pre-gates on the anchor's O(1) degree bound so sparse
	// input rows go straight to the DFS without a frontier build.
	if ec.method == spmat.MethodAuto && !g.UseMatrix(spmat.EstimateFrontier(src, uint64(from))) {
		ec.spm.CountHop(false)
		return out, false, nil
	}
	frontier, err := spmat.WeightedFrontier(src, uint64(from), 0, &ec.accPool)
	if err != nil {
		return out, true, err
	}
	for _, f := range frontier {
		if f.ID == uint64(from) {
			return out, false, nil
		}
	}
	if !g.Pick(ec.method, len(frontier)) {
		ec.spm.CountHop(false)
		return out, false, nil
	}
	ec.spm.CountHop(true)
	if ec.profileOps {
		ec.ops[ec.curStep].name = "VarLengthExpand(matrix)"
	}
	if err := ec.ctxErr(); err != nil {
		return out, true, err
	}
	emit := func(end uint64, paths int64) {
		for i := int64(0); i < paths; i++ {
			nr := cloneRow(r)
			nr[s.toSlot] = NodeRef(graph.NodeID(end))
			out = append(out, nr)
		}
	}
	if s.minHops == 1 {
		for _, f := range frontier {
			emit(f.ID, f.W)
		}
	}
	// The executor is single-goroutine; the gather runs inline (the
	// stores' dispatch layer is where worker sharding lives).
	acc, err := spmat.Gather(src, frontier, 0, 1, par.Metrics{}, &ec.accPool)
	if err != nil {
		return out, true, err
	}
	ends := make([]spmat.WeightedID, 0, acc.Len())
	acc.ForEach(func(col uint64, c int64) {
		ends = append(ends, spmat.WeightedID{ID: col, W: c})
	})
	ec.accPool.Put(acc)
	sort.Slice(ends, func(i, j int) bool { return ends[i].ID < ends[j].ID })
	for _, e := range ends {
		emit(e.ID, e.W)
	}
	return out, true, nil
}
