package cypher

import (
	"reflect"
	"testing"

	"twigraph/internal/spmat"
)

// TestVarLengthMatrixMatchesDFS pins the algebraic var-length
// expansion against the DFS enumeration: identical rows for the
// depth-2 and depth-1..2 phrasings under every method knob.
func TestVarLengthMatrixMatchesDFS(t *testing.T) {
	e, _ := newTestEngine(t)
	queries := []string{
		`MATCH (a:user {uid: 1})-[:follows*2..2]->(f:user) RETURN f.uid AS id, count(*) AS c ORDER BY c DESC, id`,
		`MATCH (a:user {uid: 1})-[:follows*1..2]->(f:user) RETURN f.uid AS id, count(*) AS c ORDER BY c DESC, id`,
		`MATCH (a:user {uid: 2})-[:follows*2..2]->(f:user) WHERE NOT (a)-[:follows]->(f) AND f.uid <> 2
		 RETURN f.uid AS id, count(*) AS c ORDER BY c DESC, id`,
	}
	for _, q := range queries {
		e.SetExecMethod(spmat.MethodNav)
		nav := mustQuery(t, e, q, nil)
		for _, m := range []spmat.Method{spmat.MethodMatrix, spmat.MethodAuto} {
			e.SetExecMethod(m)
			got := mustQuery(t, e, q, nil)
			if !reflect.DeepEqual(got.Rows, nav.Rows) {
				t.Errorf("method %v diverges from nav on %q:\n nav: %v\n got: %v", m, q, nav.Rows, got.Rows)
			}
		}
		e.SetExecMethod(spmat.MethodNav)
	}
}

// TestVarLengthMatrixProfileName checks that PROFILE reports the
// run-time plan choice: the operator renames itself when the gather
// executes, and stays "VarLengthExpand" under the default method.
func TestVarLengthMatrixProfileName(t *testing.T) {
	e, _ := newTestEngine(t)
	const q = `PROFILE MATCH (a:user {uid: 1})-[:follows*2..2]->(f:user) RETURN count(*)`
	opNames := func(r *Result) []string {
		var names []string
		for _, st := range r.Profile.Stages {
			for _, op := range st.Ops {
				names = append(names, op.Name)
			}
		}
		return names
	}
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	nav := mustQuery(t, e, q, nil)
	if names := opNames(nav); !has(names, "VarLengthExpand") || has(names, "VarLengthExpand(matrix)") {
		t.Errorf("nav profile ops = %v", names)
	}
	e.SetExecMethod(spmat.MethodMatrix)
	defer e.SetExecMethod(spmat.MethodNav)
	mat := mustQuery(t, e, q, nil)
	if names := opNames(mat); !has(names, "VarLengthExpand(matrix)") {
		t.Errorf("matrix profile ops = %v", names)
	}
	if e.db.Obs().Counter(spmat.CMatrixHops).Load() == 0 {
		t.Error("matrix hop counter never incremented")
	}
}

// TestVarLengthMatrixIneligible checks the gate bails to the DFS on
// shapes the gather cannot model: bound relationship variables and
// depth-3 expansions keep their DFS semantics under a forced matrix
// method.
func TestVarLengthMatrixIneligible(t *testing.T) {
	e, _ := newTestEngine(t)
	queries := []string{
		`MATCH (a:user {uid: 1})-[r:follows*2..2]->(f:user) RETURN f.uid AS id, count(*) AS c ORDER BY c DESC, id`,
		`MATCH (a:user {uid: 1})-[:follows*1..3]->(f:user) RETURN f.uid AS id, count(*) AS c ORDER BY c DESC, id`,
	}
	for _, q := range queries {
		e.SetExecMethod(spmat.MethodNav)
		nav := mustQuery(t, e, q, nil)
		e.SetExecMethod(spmat.MethodMatrix)
		got := mustQuery(t, e, q, nil)
		e.SetExecMethod(spmat.MethodNav)
		if !reflect.DeepEqual(got.Rows, nav.Rows) {
			t.Errorf("ineligible shape diverges on %q:\n nav: %v\n got: %v", q, nav.Rows, got.Rows)
		}
	}
}
