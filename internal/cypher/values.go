package cypher

import (
	"fmt"
	"strings"

	"twigraph/internal/graph"
)

// Runtime cells are `any` values holding one of:
//
//	graph.Value  — scalar property values and literals
//	NodeRef      — a node binding
//	RelRef       — a relationship binding
//	PathVal      — a named path (shortestPath results)
//	ListVal      — collect() results and list literals
//
// The paper's result tables only ever contain scalars, but nodes and
// paths flow through intermediate rows.

// NodeRef is a node binding in a result row.
type NodeRef graph.NodeID

// RelRef is a relationship binding in a result row.
type RelRef graph.EdgeID

// PathVal is a bound path.
type PathVal struct {
	Nodes []graph.NodeID
	Rels  []graph.EdgeID
}

// Length returns the number of relationships in the path.
func (p PathVal) Length() int { return len(p.Rels) }

// ListVal is a list cell.
type ListVal []any

// row is one binding tuple; slots are assigned by the compiler.
type row []any

// cellEqual compares two runtime cells for equality (ternary logic
// collapsed to bool; nil equals nothing, matching Cypher's null).
func cellEqual(a, b any) bool {
	switch x := a.(type) {
	case graph.Value:
		if y, ok := b.(graph.Value); ok {
			if x.IsNil() || y.IsNil() {
				return false
			}
			return x.Equal(y)
		}
		return false
	case NodeRef:
		y, ok := b.(NodeRef)
		return ok && x == y
	case RelRef:
		y, ok := b.(RelRef)
		return ok && x == y
	case nil:
		return false
	case ListVal:
		y, ok := b.(ListVal)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !cellEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case PathVal:
		return false // paths are never compared in this subset
	}
	return false
}

// cellCompare orders two cells for ORDER BY. Scalars order by
// graph.Value.Compare; node/rel refs by id; mixed kinds by a stable
// class rank. Nil sorts last (Cypher null ordering).
func cellCompare(a, b any) int {
	ra, rb := cellRank(a), cellRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch x := a.(type) {
	case graph.Value:
		return x.Compare(b.(graph.Value))
	case NodeRef:
		y := b.(NodeRef)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case RelRef:
		y := b.(RelRef)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case ListVal:
		y := b.(ListVal)
		for i := 0; i < len(x) && i < len(y); i++ {
			if c := cellCompare(x[i], y[i]); c != 0 {
				return c
			}
		}
		return len(x) - len(y)
	}
	return 0
}

func cellRank(a any) int {
	switch v := a.(type) {
	case graph.Value:
		if v.IsNil() {
			return 9 // nulls last
		}
		return 0
	case NodeRef:
		return 1
	case RelRef:
		return 2
	case PathVal:
		return 3
	case ListVal:
		return 4
	case nil:
		return 9
	}
	return 8
}

// cellKey returns a stable string key for DISTINCT and grouping.
func cellKey(a any) string {
	switch v := a.(type) {
	case graph.Value:
		return "v:" + v.Key()
	case NodeRef:
		return fmt.Sprintf("n:%d", v)
	case RelRef:
		return fmt.Sprintf("r:%d", v)
	case PathVal:
		var sb strings.Builder
		sb.WriteString("p:")
		for _, n := range v.Nodes {
			fmt.Fprintf(&sb, "%d,", n)
		}
		return sb.String()
	case ListVal:
		var sb strings.Builder
		sb.WriteString("l:[")
		for _, e := range v {
			sb.WriteString(cellKey(e))
			sb.WriteByte(';')
		}
		sb.WriteByte(']')
		return sb.String()
	case nil:
		return "nil"
	}
	return fmt.Sprintf("?:%v", a)
}

// cellTruth evaluates a cell as a boolean predicate result.
func cellTruth(a any) bool {
	if v, ok := a.(graph.Value); ok {
		return v.Kind() == graph.KindBool && v.Bool()
	}
	return false
}

// cellIsNull reports whether the cell is a Cypher null.
func cellIsNull(a any) bool {
	if a == nil {
		return true
	}
	if v, ok := a.(graph.Value); ok {
		return v.IsNil()
	}
	return false
}
