package cypher

import (
	"context"
	"testing"
	"time"

	"twigraph/internal/graph"
	"twigraph/internal/obs"
)

// TestProfileGuidesRephrasing reproduces the paper's methodology: "We
// have often used Cypher's profiler to observe the execution plan and
// determine which query plan results in the least number of database
// hits (db hits) and have rephrased the query for better performance."
// An index seek must report far fewer db hits than the label-scan
// phrasing of the same lookup.
func TestProfileGuidesRephrasing(t *testing.T) {
	e, _ := newTestEngine(t)
	seek := mustQuery(t, e, `PROFILE MATCH (u:user {uid: 3}) RETURN u.screen_name`, nil)
	scan := mustQuery(t, e, `PROFILE MATCH (u:user) WHERE u.screen_name = 'carol' RETURN u.uid`, nil)
	if seek.Profile == nil || scan.Profile == nil {
		t.Fatal("missing profiles")
	}
	if seek.Profile.TotalDBHits >= scan.Profile.TotalDBHits {
		t.Errorf("index seek hits (%d) not below label scan hits (%d)",
			seek.Profile.TotalDBHits, scan.Profile.TotalDBHits)
	}
	// The plans differ visibly.
	var seekOps, scanOps string
	for _, st := range seek.Profile.Stages {
		for _, op := range st.Ops {
			seekOps += op.Name + " "
		}
	}
	for _, st := range scan.Profile.Stages {
		for _, op := range st.Ops {
			scanOps += op.Name + " "
		}
	}
	if seekOps == scanOps {
		t.Errorf("identical plans: %q", seekOps)
	}
}

func TestProfileTimingspopulated(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `PROFILE MATCH (u:user) RETURN count(*)`, nil)
	p := res.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	if p.Execute <= 0 {
		t.Error("zero execute time")
	}
	if p.PlanCached {
		t.Error("first run reported cached plan")
	}
	if len(p.Stages) != 2 { // Match + Return
		t.Errorf("stages = %d", len(p.Stages))
	}
	// Second run hits the plan cache.
	res2 := mustQuery(t, e, `PROFILE MATCH (u:user) RETURN count(*)`, nil)
	if !res2.Profile.PlanCached {
		t.Error("second run not cached")
	}
}

func TestAggregateArithmetic(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e, `MATCH (u:user) RETURN count(*) * 2 + 1, -count(*)`, nil)
	r := res.Rows[0]
	if intCell(t, r[0]) != 13 || intCell(t, r[1]) != -6 {
		t.Errorf("aggregate arithmetic = %v", r)
	}
	// Mixed aggregate + grouping key arithmetic.
	res = mustQuery(t, e,
		`MATCH (u:user)-[:posts]->(t:tweet) RETURN u.uid, count(t) + 100 AS c ORDER BY c DESC, u.uid LIMIT 1`, nil)
	if intCell(t, res.Rows[0][1]) != 102 { // carol posts 2
		t.Errorf("count+100 = %v", res.Rows)
	}
}

func TestVarLengthZeroMin(t *testing.T) {
	e, _ := newTestEngine(t)
	// *0..1 includes the start node itself.
	res := mustQuery(t, e,
		`MATCH (a:user {uid: 1})-[:follows*0..1]->(f:user) RETURN DISTINCT f.uid ORDER BY f.uid`, nil)
	if len(res.Rows) != 3 { // alice herself + bob + carol
		t.Errorf("*0..1 rows = %v", res.Rows)
	}
	if intCell(t, res.Rows[0][0]) != 1 {
		t.Errorf("start node missing from *0..: %v", res.Rows)
	}
}

func TestParameterTypesInSeek(t *testing.T) {
	e, _ := newTestEngine(t)
	// String parameter against the string-typed screen_name property.
	res := mustQuery(t, e,
		`MATCH (u:user) WHERE u.screen_name = $name RETURN u.uid`,
		map[string]graph.Value{"name": graph.StringValue("eve")})
	if len(res.Rows) != 1 || intCell(t, res.Rows[0][0]) != 5 {
		t.Errorf("string param = %v", res.Rows)
	}
}

// TestProfileHitsMatchRegistry pins the profiler to the observability
// registry: PROFILE's TotalDBHits must equal the delta of the engine's
// record_fetches counter across the query, and the per-stage hits must
// sum to the total — both now come from the same span machinery.
func TestProfileHitsMatchRegistry(t *testing.T) {
	e, _ := newTestEngine(t)
	fetches := e.DB().Obs().Counter(obs.CRecordFetches)
	before := fetches.Load()
	res := mustQuery(t, e,
		`PROFILE MATCH (u:user)-[:follows]->(v:user) RETURN count(*)`, nil)
	delta := fetches.Load() - before
	p := res.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	if p.TotalDBHits == 0 {
		t.Fatal("zero db hits for a traversal")
	}
	if p.TotalDBHits != delta {
		t.Errorf("TotalDBHits = %d, registry record-fetch delta = %d", p.TotalDBHits, delta)
	}
	var sum uint64
	for _, st := range p.Stages {
		sum += st.DBHits
	}
	if sum != p.TotalDBHits {
		t.Errorf("stage hits sum %d != total %d", sum, p.TotalDBHits)
	}
}

// TestTracerSlowLogCapturesQuery verifies that an enabled tracer records
// finished query spans (stage children included) in the slow log.
func TestTracerSlowLogCapturesQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	tr := e.DB().Tracer()
	tr.SetEnabled(true)
	tr.SetSlowThreshold(0) // record everything
	defer tr.SetEnabled(false)
	mustQuery(t, e, `MATCH (u:user) RETURN count(*)`, nil)
	log := tr.SlowLog()
	if len(log) == 0 {
		t.Fatal("slow log empty after traced query")
	}
	last := log[len(log)-1]
	if len(last.Children) == 0 {
		t.Errorf("root span %q has no stage children", last.Name)
	}
	if last.Deltas[obs.CRecordFetches] == 0 {
		t.Errorf("root span has zero record-fetch delta: %+v", last.Deltas)
	}
}

// TestProfileStageWallTimeConsistent pins the new per-stage timing to
// the root span: stage wall times are disjoint slices of the execution,
// so their sum can never exceed the root duration, and the operator
// breakdown of each stage accounts for Elapsed = Self + sum(op times).
func TestProfileStageWallTimeConsistent(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`PROFILE MATCH (u:user)-[:follows]->(v:user) RETURN u.uid, count(v) ORDER BY u.uid`, nil)
	p := res.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	if p.Root <= 0 {
		t.Fatalf("root duration = %v", p.Root)
	}
	var sum time.Duration
	for _, st := range p.Stages {
		if st.Elapsed < 0 || st.Self < 0 {
			t.Errorf("stage %s: negative time (elapsed %v, self %v)", st.Name, st.Elapsed, st.Self)
		}
		var ops time.Duration
		for _, op := range st.Ops {
			ops += op.Elapsed
		}
		// Self + op times reconstruct the stage's wall time exactly (Self
		// is derived), modulo the clamp at zero.
		if st.Self > 0 && st.Self+ops != st.Elapsed {
			t.Errorf("stage %s: self %v + ops %v != elapsed %v", st.Name, st.Self, ops, st.Elapsed)
		}
		sum += st.Elapsed
	}
	// Stage spans nest inside the root span; allow scheduler slop well
	// below what a real inconsistency would produce.
	if tol := 20 * time.Millisecond; sum > p.Root+tol {
		t.Errorf("stage time sum %v exceeds root duration %v", sum, p.Root)
	}
}

// TestProfileOperatorTiming verifies the per-operator breakdown carries
// rows, db hits and wall time for a traversal's expand operator.
func TestProfileOperatorTiming(t *testing.T) {
	e, _ := newTestEngine(t)
	res := mustQuery(t, e,
		`PROFILE MATCH (u:user {uid: 1})-[:follows]->(v:user) RETURN v.uid`, nil)
	var match *StageProfile
	for i := range res.Profile.Stages {
		if res.Profile.Stages[i].Name == "Match" {
			match = &res.Profile.Stages[i]
		}
	}
	if match == nil || len(match.Ops) == 0 {
		t.Fatalf("no operator breakdown: %+v", res.Profile.Stages)
	}
	var sawExpand bool
	var opHits uint64
	for _, op := range match.Ops {
		if op.Name == "Expand" {
			sawExpand = true
			if op.Rows == 0 {
				t.Errorf("Expand produced 0 rows")
			}
		}
		opHits += op.DBHits
	}
	if !sawExpand {
		t.Errorf("operators = %+v, want an Expand", match.Ops)
	}
	if opHits == 0 || opHits > match.DBHits {
		t.Errorf("operator hits %d vs stage hits %d", opHits, match.DBHits)
	}
}

// TestSlowLogAbortStatus wires graceful degradation into the slow ring:
// a timed-out and a cancelled query land there with their abort status,
// next to a completed one.
func TestSlowLogAbortStatus(t *testing.T) {
	e, _ := newTestEngine(t)
	tr := e.DB().Tracer()
	tr.SetEnabled(true)
	tr.SetSlowThreshold(0)
	defer tr.SetEnabled(false)

	mustQuery(t, e, `MATCH (u:user) RETURN count(*)`, nil)

	expired, cancelExp := context.WithTimeout(context.Background(), -1)
	defer cancelExp()
	if _, err := e.QueryCtx(expired, `MATCH (u:user) RETURN u.uid`, nil); err == nil {
		t.Fatal("expired query succeeded")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryCtx(cancelled, `MATCH (u:user) RETURN u.uid`, nil); err == nil {
		t.Fatal("cancelled query succeeded")
	}

	log := tr.SlowLog()
	if len(log) < 3 {
		t.Fatalf("slow log entries = %d, want >= 3", len(log))
	}
	tail := log[len(log)-3:]
	want := []string{obs.StatusCompleted, obs.StatusTimedOut, obs.StatusCancelled}
	for i, snap := range tail {
		if snap.Status != want[i] {
			t.Errorf("entry %d (%s) status = %q, want %q", i, snap.Name, snap.Status, want[i])
		}
	}
}
