package cypher

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds random byte soup to the parser: every
// input must either parse or return an error, never panic.
func TestParseNeverPanics(t *testing.T) {
	check := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMangledQueries mutates real queries, which
// reaches deeper parser states than pure noise.
func TestParseNeverPanicsOnMangledQueries(t *testing.T) {
	base := `MATCH (a:user {uid: $uid})-[:follows*2..2]->(f:user) WHERE NOT (a)-[:follows]->(f) RETURN f.uid AS id, count(*) AS c ORDER BY c DESC LIMIT 10`
	for cut := 0; cut < len(base); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", base[:cut], r)
				}
			}()
			_, _ = Parse(base[:cut])
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on suffix %q: %v", base[cut:], r)
				}
			}()
			_, _ = Parse(base[cut:])
		}()
	}
	// Byte flips.
	for i := 0; i < len(base); i += 3 {
		mangled := []byte(base)
		mangled[i] ^= 0x5A
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mangled %q: %v", mangled, r)
				}
			}()
			_, _ = Parse(string(mangled))
		}()
	}
}

// TestValidQueriesRoundTripThroughPlanner compiles a battery of valid
// queries against a live engine to check the planner rejects nothing it
// should accept.
func TestValidQueriesRoundTripThroughPlanner(t *testing.T) {
	e, _ := newTestEngine(t)
	queries := []string{
		`MATCH (u:user) RETURN u`,
		`MATCH (u:user) RETURN u.uid ORDER BY u.uid DESC SKIP 1 LIMIT 3`,
		`MATCH (u:user)-[r:follows]->(v) RETURN id(r), v.uid`,
		`MATCH (u:user {uid: 1})-[:follows*1..3]->(v) RETURN DISTINCT v.uid`,
		`MATCH (u:user) WHERE u.uid >= 2 AND u.uid <= 4 RETURN collect(u.uid)`,
		`MATCH (u:user) WITH u.followers AS f, count(*) AS n RETURN f, n ORDER BY f`,
		`MATCH (u:user) RETURN u.uid + 1, u.uid * 2 - 3, u.uid % 2`,
		`MATCH (t:tweet) WHERE size(t.text) > 5 RETURN count(*)`,
		`MATCH (a:user {uid: 1}), (b:user {uid: 4}), p = shortestPath((a)-[:follows*..5]-(b)) RETURN length(p)`,
		`MATCH (u:user) WHERE exists(u.followers) OR u.uid = 0 RETURN count(DISTINCT u)`,
		`MATCH (u:user {uid:2}) OPTIONAL MATCH (u)-[:posts]->(t) RETURN u.uid, count(t)`,
		`MATCH (u:user) WITH collect(u.uid) AS ids UNWIND ids AS i RETURN i ORDER BY i LIMIT 2`,
		`PROFILE MATCH (u:user {uid: 3}) RETURN u.screen_name`,
	}
	for _, q := range queries {
		if _, err := e.Query(q, nil); err != nil {
			t.Errorf("valid query rejected: %q: %v", q, err)
		}
	}
}
