package cypher

import (
	"context"
	"errors"
	"testing"

	"twigraph/internal/neodb"
)

func TestQueryCtxHonorsDeadline(t *testing.T) {
	e, _ := newTestEngine(t)

	ctx, cancel := context.WithTimeout(context.Background(), -1) // already expired
	defer cancel()
	if _, err := e.QueryCtx(ctx, `MATCH (u:user) RETURN u.uid`, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired QueryCtx error = %v", err)
	}
	if got := e.DB().Obs().Counter(neodb.CQueriesTimedOut).Load(); got != 1 {
		t.Errorf("queries_timed_out = %d, want 1", got)
	}
	if got := e.DB().Obs().Counter(neodb.CQueriesCancelled).Load(); got != 0 {
		t.Errorf("queries_cancelled = %d, want 0", got)
	}

	// The engine stays usable: the same query runs unbounded.
	res := mustQuery(t, e, `MATCH (u:user) RETURN count(*)`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows after abort = %d", len(res.Rows))
	}
}

func TestQueryCtxHonorsCancel(t *testing.T) {
	e, _ := newTestEngine(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A shortest-path query exercises the nested engine call: the abort
	// is detected (and counted) exactly once, in whichever layer sees
	// the context first.
	_, err := e.QueryCtx(ctx,
		`MATCH (a:user {uid: 1}), (b:user {uid: 4}), p = shortestPath((a)-[:follows*..5]->(b)) RETURN length(p)`, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled QueryCtx error = %v", err)
	}
	if got := e.DB().Obs().Counter(neodb.CQueriesCancelled).Load(); got != 1 {
		t.Errorf("queries_cancelled = %d, want exactly 1 (no double count)", got)
	}
}

func TestQueryCtxNilIsUnbounded(t *testing.T) {
	e, _ := newTestEngine(t)
	res, err := e.QueryCtx(nil, `MATCH (u:user) RETURN count(*)`, nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("nil-ctx query = (%v, %v)", res, err)
	}
	if got := e.DB().Obs().Counter(neodb.CQueriesTimedOut).Load(); got != 0 {
		t.Errorf("queries_timed_out = %d, want 0", got)
	}
}
