package crashtest

import (
	"strings"
	"testing"

	"twigraph/internal/graph"
	"twigraph/internal/sparkdb"
	"twigraph/internal/vfs"
)

// buildSparkDB creates a small social graph in the bitmap engine.
func buildSparkDB(t *testing.T) *sparkdb.DB {
	t.Helper()
	db := sparkdb.New(sparkdb.Config{})
	user, err := db.NewNodeType("user")
	if err != nil {
		t.Fatal(err)
	}
	follows, err := db.NewEdgeType("follows", true)
	if err != nil {
		t.Fatal(err)
	}
	uid, err := db.NewAttribute(user, "uid", graph.KindInt, true)
	if err != nil {
		t.Fatal(err)
	}
	var oids []uint64
	for i := 0; i < 6; i++ {
		o, err := db.NewNode(user)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttribute(o, uid, graph.IntValue(int64(i+1))); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, o)
	}
	for i := range oids {
		if _, err := db.NewEdge(follows, oids[i], oids[(i+1)%len(oids)]); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSparkImageCrashSafety drives the image save path through every
// fault the durability contract names: a completed save survives a
// crash; a save whose temp-file fsync fails (or that is torn
// mid-write) leaves the previous image untouched and loadable; and a
// bit flip in the stored image is rejected by the checksum, never
// silently loaded.
func TestSparkImageCrashSafety(t *testing.T) {
	const img = "/spark.img"
	db := buildSparkDB(t)

	t.Run("completed save survives crash", func(t *testing.T) {
		fs := vfs.NewFaultFS()
		if err := db.SaveFS(fs, img); err != nil {
			t.Fatal(err)
		}
		fs.Crash()
		db2, err := sparkdb.LoadFS(fs, img)
		if err != nil {
			t.Fatal(err)
		}
		if r := db2.CheckIntegrity(); !r.OK() {
			t.Fatalf("reloaded image has violations:\n%s", r)
		}
	})

	t.Run("failed fsync keeps old image", func(t *testing.T) {
		fs := vfs.NewFaultFS()
		if err := db.SaveFS(fs, img); err != nil {
			t.Fatal(err)
		}
		// A second save (say, after more writes) whose temp-file fsync
		// fails must report the failure and leave the old image intact.
		fs.AddFault(vfs.Fault{Op: vfs.OpSync, PathSubstr: ".tmp", Nth: 1, Kind: vfs.KindErr})
		if err := db.SaveFS(fs, img); err == nil {
			t.Fatal("save with failed fsync reported success")
		}
		fs.Crash()
		db2, err := sparkdb.LoadFS(fs, img)
		if err != nil {
			t.Fatalf("old image unloadable after failed save: %v", err)
		}
		if r := db2.CheckIntegrity(); !r.OK() {
			t.Fatalf("old image has violations:\n%s", r)
		}
	})

	t.Run("torn save keeps old image", func(t *testing.T) {
		fs := vfs.NewFaultFS()
		if err := db.SaveFS(fs, img); err != nil {
			t.Fatal(err)
		}
		fs.CrashDuringWrite(1, 100) // tear the temp-file body write
		db.SaveFS(fs, img)          // dies mid-write
		if !fs.Halted() {
			t.Skip("save used fewer writes than the crash point")
		}
		fs.Crash()
		db2, err := sparkdb.LoadFS(fs, img)
		if err != nil {
			t.Fatalf("old image unloadable after torn save: %v", err)
		}
		if r := db2.CheckIntegrity(); !r.OK() {
			t.Fatalf("old image has violations:\n%s", r)
		}
	})

	t.Run("bit flip detected by checksum", func(t *testing.T) {
		fs := vfs.NewFaultFS()
		if err := db.SaveFS(fs, img); err != nil {
			t.Fatal(err)
		}
		fs.AddFault(vfs.Fault{Op: vfs.OpRead, PathSubstr: img, Nth: 1, Kind: vfs.KindBitFlip, BitOffset: 203})
		_, err := sparkdb.LoadFS(fs, img)
		if err == nil {
			t.Fatal("corrupted image loaded without error")
		}
		if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "loading") {
			t.Errorf("unexpected error: %v", err)
		}
	})
}
