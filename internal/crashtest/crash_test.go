package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/vfs"
	"twigraph/internal/wal"
)

const workloadTxs = 30

// runWorkload executes up to workloadTxs transactions, stopping at the
// first commit failure (the crash boundary).
func runWorkload(t *testing.T, h *Harness) {
	t.Helper()
	for i := 0; i < workloadTxs; i++ {
		if err := h.RunTx(); err != nil {
			return
		}
	}
}

// recoverAndCheck is the post-crash assertion bundle: reopen, match the
// oracle, pass the integrity check, and accept new writes.
func recoverAndCheck(t *testing.T, h *Harness) {
	t.Helper()
	if err := h.CrashAndReopen(); err != nil {
		t.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The recovered store must accept and persist new transactions.
	if err := h.RunTx(); err != nil {
		t.Fatalf("post-recovery transaction: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("post-recovery state: %v", err)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("post-recovery integrity: %v", err)
	}
}

// TestCrashAtEverySyncBoundary halts the filesystem after each WAL
// fsync in turn. With one fsync per commit, this crashes the engine
// immediately after every transaction in the workload; recovery must
// reproduce exactly the committed prefix every time.
func TestCrashAtEverySyncBoundary(t *testing.T) {
	for k := uint64(1); k <= workloadTxs; k++ {
		t.Run(fmt.Sprintf("sync%02d", k), func(t *testing.T) {
			h, err := New(42)
			if err != nil {
				t.Fatal(err)
			}
			h.FS.CrashAfter(vfs.OpSync, k)
			runWorkload(t, h)
			if !h.FS.Halted() {
				t.Fatalf("crash point %d never reached", k)
			}
			recoverAndCheck(t, h)
		})
	}
}

// TestCrashDuringTornWALWrite halts the filesystem partway through a
// randomized WAL write: only a prefix of the frame lands, the process
// "dies", and recovery must truncate the torn tail and keep exactly the
// committed prefix.
func TestCrashDuringTornWALWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 24; trial++ {
		n := uint64(1 + rng.Intn(80))
		keep := rng.Intn(24)
		t.Run(fmt.Sprintf("write%02d-keep%02d", n, keep), func(t *testing.T) {
			h, err := New(42)
			if err != nil {
				t.Fatal(err)
			}
			h.FS.CrashDuringWrite(n, keep)
			runWorkload(t, h)
			if !h.FS.Halted() {
				t.Fatalf("crash point (write %d) never reached", n)
			}
			recoverAndCheck(t, h)
		})
	}
}

// TestTornDurableTailTruncatedOnReopen plants garbage bytes directly in
// the durable WAL image — the on-disk effect of a torn sector write —
// and verifies reopen truncates the tail cleanly without touching the
// committed prefix.
func TestTornDurableTailTruncatedOnReopen(t *testing.T) {
	for _, garbage := range [][]byte{
		{0xFF},                         // lone junk byte
		{0x05, 0x00, 0x00, 0x00, 0x01}, // plausible length, truncated frame
		make([]byte, 64),               // a run of zeros (implausible frame)
	} {
		h, err := New(42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := h.RunTx(); err != nil {
				t.Fatal(err)
			}
		}
		walPath := filepath.Join(h.Dir, WALPath)
		f, err := h.FS.OpenFile(walPath, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		intact, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(garbage, intact); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil { // the torn tail survives the crash
			t.Fatal(err)
		}
		f.Close()

		recoverAndCheck(t, h)
		if got := h.FS.VolatileLen(walPath); int64(got) <= intact-1 && got != -1 {
			t.Errorf("WAL shorter than intact prefix after reopen: %d < %d", got, intact)
		}
	}
}

// TestWALSyncFailureStickyAndObservable injects one fsync failure on
// the WAL and verifies the full degradation contract: the commit fails,
// the log is poisoned (later commits fail with ErrPoisoned without
// reaching the disk), the failure is visible in the observability
// registry, reads still work, and a restart restores service.
func TestWALSyncFailureStickyAndObservable(t *testing.T) {
	h, err := New(9)
	if err != nil {
		t.Fatal(err)
	}
	h.FS.AddFault(vfs.Fault{Op: vfs.OpSync, PathSubstr: WALPath, Nth: 1, Kind: vfs.KindErr})

	if err := h.RunTx(); err == nil {
		t.Fatal("commit with failed fsync reported success")
	}
	err2 := h.RunTx()
	if err2 == nil {
		t.Fatal("commit on poisoned log reported success")
	}
	if !errors.Is(err2, wal.ErrPoisoned) {
		t.Errorf("second commit error = %v, want ErrPoisoned", err2)
	}
	if got := h.DB.Obs().Counter(neodb.CWALSyncFailures).Load(); got == 0 {
		t.Error("wal_sync_failures counter not incremented")
	}
	if got := h.FS.SyncFailures(); got == 0 {
		t.Error("filesystem recorded no sync failures")
	}
	// Reads remain available while writes are refused.
	for id := range h.Model.Nodes {
		if _, err := h.DB.NodeByID(id); err != nil {
			t.Errorf("read after poisoning: %v", err)
		}
		break
	}
	// A checkpoint must refuse to truncate a poisoned log.
	if err := h.DB.Sync(); err == nil {
		t.Error("checkpoint truncated a poisoned log")
	}
	// Restart restores service with the committed prefix.
	recoverAndCheck(t, h)
}

// TestCrashBetweenAppendsIsAtomic halts the filesystem on a write
// (an Append) rather than a sync, so a transaction dies with only part
// of its intent in the volatile log. None of it may survive.
func TestCrashBetweenAppendsIsAtomic(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 5, 8, 13, 21, 34} {
		t.Run(fmt.Sprintf("write%02d", n), func(t *testing.T) {
			h, err := New(64)
			if err != nil {
				t.Fatal(err)
			}
			h.FS.CrashAfter(vfs.OpWrite, n)
			runWorkload(t, h)
			if !h.FS.Halted() {
				t.Fatalf("crash point %d never reached", n)
			}
			recoverAndCheck(t, h)
		})
	}
}

// TestReadCorruptionDetectedNotSilent flips a bit in a store-page read
// and verifies the engine reports an error or the integrity check flags
// the store — a flipped bit must never produce a silently wrong answer.
func TestReadCorruptionDetectedNotSilent(t *testing.T) {
	h, err := New(11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := h.RunTx(); err != nil {
			t.Fatal(err)
		}
	}
	// Force the caches cold so the next reads hit the filesystem, then
	// corrupt one node-store read.
	if err := h.DB.CoolCaches(); err != nil {
		t.Fatal(err)
	}
	h.FS.AddFault(vfs.Fault{Op: vfs.OpRead, PathSubstr: "nodes.store", Nth: 1, Kind: vfs.KindBitFlip, BitOffset: 137})
	if err := h.Verify(); err == nil {
		if err := h.CheckIntegrity(); err == nil {
			t.Fatal("bit flip in node store went completely undetected")
		}
	}
}

// TestImportCrashNeverSilentlyPartial crashes the batch importer (which
// bypasses the WAL) at assorted write boundaries. The import is only
// durable once its final checkpoint completes, so after a crash the
// reopened store must be in one of three honest states: empty (the
// import was entirely discarded), complete (every checkpoint write made
// it), or flagged by CheckIntegrity (a torn checkpoint, which the
// durability contract says requires a re-import). What must never
// happen is a partial dataset that passes the integrity check — that
// would be a silent half-import.
func TestImportCrashNeverSilentlyPartial(t *testing.T) {
	csvDir := writeTinyCSVDir(t)
	const fullNodes, fullEdges = 6, 8 // writeTinyCSVDir totals
	for _, n := range []uint64{1, 2, 5, 9, 14, 20} {
		t.Run(fmt.Sprintf("write%02d", n), func(t *testing.T) {
			fs := vfs.NewFaultFS()
			cfg := neodb.Config{CachePages: 4, FS: fs} // tiny cache: evictions write early
			db, err := neodb.Open("/db", cfg)
			if err != nil {
				t.Fatal(err)
			}
			fs.CrashAfter(vfs.OpWrite, n)
			imp := db.NewImporter(0, nil)
			nodes, edges := neodb.ImportDirLayout(csvDir)
			if _, err := imp.Run(nodes, edges); err == nil {
				if h := fs.Halted(); h {
					t.Fatal("import reported success on a halted filesystem")
				}
				t.Skip("import finished before the crash point")
			}
			fs.Crash()
			db2, err := neodb.Open("/db", cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := db2.CheckIntegrity()
			gotNodes, gotEdges := db2.NodeCount(), db2.RelCount()
			switch {
			case gotNodes == 0 && gotEdges == 0:
				if !r.OK() {
					t.Errorf("empty store has violations:\n%s", r)
				}
			case gotNodes == fullNodes && gotEdges == fullEdges && r.OK():
				// Checkpoint finished just before the halt; fine.
			case !r.OK():
				// Torn checkpoint, detected. Also fine.
			default:
				t.Errorf("silent partial import: %d nodes, %d edges, integrity clean", gotNodes, gotEdges)
			}
		})
	}
}

// TestImportCompletesThenCrash runs the import to completion (its final
// checkpoint makes the data durable), crashes, and verifies the whole
// dataset plus integrity after reopen.
func TestImportCompletesThenCrash(t *testing.T) {
	csvDir := writeTinyCSVDir(t)
	fs := vfs.NewFaultFS()
	cfg := neodb.Config{CachePages: 64, FS: fs}
	db, err := neodb.Open("/db", cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := db.NewImporter(0, nil)
	nodes, edges := neodb.ImportDirLayout(csvDir)
	rep, err := imp.Run(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	db2, err := neodb.Open("/db", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.NodeCount(); got != uint64(rep.Nodes) {
		t.Errorf("nodes after crash = %d, want %d", got, rep.Nodes)
	}
	if got := db2.RelCount(); got != uint64(rep.Edges) {
		t.Errorf("rels after crash = %d, want %d", got, rep.Edges)
	}
	if r := db2.CheckIntegrity(); !r.OK() {
		t.Errorf("imported store violations:\n%s", r)
	}
	// Index survives via its checkpoint snapshot.
	user := db2.LabelID("user")
	uid := db2.PropKeyID("uid")
	if _, ok := db2.FindNode(user, uid, graph.IntValue(1)); !ok {
		t.Error("index lost across crash")
	}
}

// writeTinyCSVDir mirrors the importer test fixture: a 6-node, 8-edge
// Twitter-shaped dataset in the conventional generator layout.
func writeTinyCSVDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"users.csv":    "uid,screen_name,followers\n1,alice,2\n2,bob,1\n3,carol,1\n",
		"tweets.csv":   "tid,text\n10,hello #go\n11,hi @alice\n",
		"hashtags.csv": "hid,tag\n100,go\n",
		"follows.csv":  "src,dst\n1,2\n2,3\n3,1\n1,3\n",
		"posts.csv":    "uid,tid\n2,10\n3,11\n",
		"mentions.csv": "tid,uid\n11,1\n",
		"tags.csv":     "tid,hid\n10,100\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
