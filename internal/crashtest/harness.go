// Package crashtest is the crash-consistency harness for the neodb
// engine: it drives a deterministic Twitter-style workload (users,
// follows/likes edges, profile properties) against a database running
// on a vfs.FaultFS, crashes the filesystem at scripted points, reopens,
// and checks the recovered state against an in-memory oracle.
//
// The contract checked after every crash:
//
//   - every transaction whose Commit returned nil before the crash is
//     fully present (durability of the committed prefix);
//   - the one transaction in flight at the crash boundary is either
//     fully present or fully absent (atomicity) — present only when its
//     WAL sync completed before the halt;
//   - no later transaction leaks any effect;
//   - the reopened store passes CheckIntegrity and accepts new writes.
package crashtest

import (
	"fmt"
	"math/rand"
	"sort"

	"twigraph/internal/graph"
	"twigraph/internal/neodb"
	"twigraph/internal/vfs"
)

// ModelNode is the oracle's view of one node.
type ModelNode struct {
	Label graph.TypeID
	Props map[string]graph.Value
}

// ModelRel is the oracle's view of one relationship.
type ModelRel struct {
	Type     graph.TypeID
	Src, Dst graph.NodeID
}

// Model is the oracle: the exact state the store must hold.
type Model struct {
	Nodes map[graph.NodeID]*ModelNode
	Rels  map[graph.EdgeID]*ModelRel
}

func newModel() *Model {
	return &Model{
		Nodes: make(map[graph.NodeID]*ModelNode),
		Rels:  make(map[graph.EdgeID]*ModelRel),
	}
}

func (m *Model) clone() *Model {
	c := newModel()
	for id, n := range m.Nodes {
		props := make(map[string]graph.Value, len(n.Props))
		for k, v := range n.Props {
			props[k] = v
		}
		c.Nodes[id] = &ModelNode{Label: n.Label, Props: props}
	}
	for id, r := range m.Rels {
		cp := *r
		c.Rels[id] = &cp
	}
	return c
}

// nodeIDs returns the live node ids in sorted order, so rng-driven
// choices are identical across repeated runs with the same seed.
func (m *Model) nodeIDs() []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *Model) relIDs() []graph.EdgeID {
	ids := make([]graph.EdgeID, 0, len(m.Rels))
	for id := range m.Rels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// isolatedNodes returns sorted ids of nodes no relationship touches.
func (m *Model) isolatedNodes() []graph.NodeID {
	touched := make(map[graph.NodeID]bool)
	for _, r := range m.Rels {
		touched[r.Src] = true
		touched[r.Dst] = true
	}
	var ids []graph.NodeID
	for id := range m.Nodes {
		if !touched[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Harness couples a neodb instance on a FaultFS with the oracle model.
type Harness struct {
	FS  *vfs.FaultFS
	DB  *neodb.DB
	Dir string

	// Model is the committed prefix. LastStaged, when non-nil, is the
	// state including the transaction whose Commit failed at the crash
	// boundary — the "maybe durable" outcome Verify also accepts.
	Model      *Model
	LastStaged *Model

	rng           *rand.Rand
	user          graph.TypeID
	follows       graph.TypeID
	likes         graph.TypeID
	seq           int64 // next synthetic uid
	hub           graph.NodeID
	SeedWALWrites uint64 // fs write-op count consumed by seeding
}

// WALPath is the path suffix of the engine's write-ahead log inside the
// harness directory (for path-scoped fault scripting).
const WALPath = "neodb.wal"

// cachePages keeps each store's working set resident: store pages then
// reach the filesystem only at checkpoints, so the durable store state
// between checkpoints is exactly the last checkpoint and WAL replay
// alone determines recovery — the strongest version of the contract.
const cachePages = 256

// New builds a harness: opens a fresh database over a new FaultFS,
// seeds a small social graph (including a near-dense hub, so the
// dense-node conversion replays inside the crash window), creates the
// uid index, and checkpoints. Every run with the same seed performs the
// identical operation sequence.
func New(seed int64) (*Harness, error) {
	h := &Harness{
		FS:    vfs.NewFaultFS(),
		Dir:   "/db",
		Model: newModel(),
		rng:   rand.New(rand.NewSource(seed)),
	}
	db, err := neodb.Open(h.Dir, h.config())
	if err != nil {
		return nil, err
	}
	h.DB = db
	h.user = db.Label("user")
	h.follows = db.RelType("follows")
	h.likes = db.RelType("likes")
	db.PropKey("uid")
	db.PropKey("screen_name")
	db.PropKey("bio")
	if err := db.CreateIndex(h.user, db.PropKey("uid")); err != nil {
		return nil, err
	}

	staged := h.Model.clone()
	tx := db.Begin()
	var ids []graph.NodeID
	for i := 0; i < 8; i++ {
		ids = append(ids, h.createUser(tx, staged))
	}
	h.hub = ids[0]
	// Park the hub close to the dense threshold so workload edges
	// convert it mid-window.
	for i := 0; i < neodb.DefaultDenseThreshold-5; i++ {
		src := ids[1+i%(len(ids)-1)]
		id := tx.CreateRel(h.follows, src, h.hub)
		staged.Rels[id] = &ModelRel{Type: h.follows, Src: src, Dst: h.hub}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	h.Model = staged
	if err := db.Sync(); err != nil { // checkpoint: stores+catalog durable
		return nil, err
	}
	h.SeedWALWrites = h.FS.OpCount(vfs.OpWrite)
	return h, nil
}

func (h *Harness) config() neodb.Config {
	return neodb.Config{CachePages: cachePages, SyncCommits: true, FS: h.FS}
}

func (h *Harness) createUser(tx *neodb.Tx, staged *Model) graph.NodeID {
	h.seq++
	props := graph.Properties{
		"uid":         graph.IntValue(h.seq),
		"screen_name": graph.StringValue(fmt.Sprintf("user%d", h.seq)),
	}
	id := tx.CreateNode(h.user, props)
	mp := map[string]graph.Value{
		"uid":         props["uid"],
		"screen_name": props["screen_name"],
	}
	staged.Nodes[id] = &ModelNode{Label: h.user, Props: mp}
	return id
}

// RunTx executes one randomized mutation transaction against both the
// database and a staged copy of the model. On successful commit the
// staged copy becomes the committed model; on failure it is retained in
// LastStaged for the boundary-ambiguity check.
func (h *Harness) RunTx() error {
	staged := h.Model.clone()
	tx := h.DB.Begin()
	nOps := 2 + h.rng.Intn(4)
	for i := 0; i < nOps; i++ {
		switch r := h.rng.Intn(10); {
		case r < 2: // new user
			h.createUser(tx, staged)
		case r < 6: // new edge, biased toward the hub
			ids := staged.nodeIDs()
			src := ids[h.rng.Intn(len(ids))]
			dst := ids[h.rng.Intn(len(ids))]
			if h.rng.Intn(3) == 0 {
				dst = h.hub
			}
			t := h.follows
			if h.rng.Intn(4) == 0 {
				t = h.likes
			}
			id := tx.CreateRel(t, src, dst)
			staged.Rels[id] = &ModelRel{Type: t, Src: src, Dst: dst}
		case r < 8: // set or clear a property
			ids := staged.nodeIDs()
			n := ids[h.rng.Intn(len(ids))]
			switch h.rng.Intn(3) {
			case 0:
				v := graph.IntValue(h.rng.Int63n(1_000_000))
				tx.SetNodeProp(n, h.DB.PropKey("uid"), v)
				staged.Nodes[n].Props["uid"] = v
			case 1:
				v := graph.StringValue(fmt.Sprintf("bio-%d", h.rng.Intn(1000)))
				tx.SetNodeProp(n, h.DB.PropKey("bio"), v)
				staged.Nodes[n].Props["bio"] = v
			case 2:
				tx.SetNodeProp(n, h.DB.PropKey("bio"), graph.NilValue)
				delete(staged.Nodes[n].Props, "bio")
			}
		case r < 9: // delete a relationship
			ids := staged.relIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[h.rng.Intn(len(ids))]
			tx.DeleteRel(id)
			delete(staged.Rels, id)
		default: // delete an isolated node
			iso := staged.isolatedNodes()
			if len(iso) == 0 {
				continue
			}
			id := iso[h.rng.Intn(len(iso))]
			tx.DeleteNode(id)
			delete(staged.Nodes, id)
		}
	}
	err := tx.Commit()
	if err == nil {
		h.Model = staged
		h.LastStaged = nil
	} else {
		h.LastStaged = staged
	}
	return err
}

// CrashAndReopen simulates process death: all volatile filesystem state
// is discarded, then the database is reopened (replaying the WAL).
func (h *Harness) CrashAndReopen() error {
	h.FS.Crash()
	db, err := neodb.Open(h.Dir, h.config())
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	h.DB = db
	return nil
}

// Verify checks the recovered store against the oracle. The committed
// prefix must match exactly — except that the single boundary
// transaction (LastStaged) is also accepted when its WAL sync made it
// durable before the halt. On a staged match the staged state becomes
// the committed model, so the harness can keep running.
func (h *Harness) Verify() error {
	errCommitted := h.verifyModel(h.Model)
	if errCommitted == nil {
		h.LastStaged = nil
		return nil
	}
	if h.LastStaged != nil {
		if err := h.verifyModel(h.LastStaged); err == nil {
			h.Model = h.LastStaged
			h.LastStaged = nil
			return nil
		}
	}
	return fmt.Errorf("recovered state matches neither the committed prefix nor the boundary transaction: %w", errCommitted)
}

func (h *Harness) verifyModel(m *Model) error {
	db := h.DB
	if got, want := db.NodeCount(), uint64(len(m.Nodes)); got != want {
		return fmt.Errorf("node count %d, want %d", got, want)
	}
	if got, want := db.RelCount(), uint64(len(m.Rels)); got != want {
		return fmt.Errorf("rel count %d, want %d", got, want)
	}
	for id, mn := range m.Nodes {
		n, err := db.NodeByID(id)
		if err != nil {
			return fmt.Errorf("node %d: %w", id, err)
		}
		if n.Label != mn.Label {
			return fmt.Errorf("node %d: label %d, want %d", id, n.Label, mn.Label)
		}
		props, err := db.NodeProps(id)
		if err != nil {
			return fmt.Errorf("node %d props: %w", id, err)
		}
		if len(props) != len(mn.Props) {
			return fmt.Errorf("node %d: %d props, want %d", id, len(props), len(mn.Props))
		}
		for k, want := range mn.Props {
			got, ok := props[k]
			if !ok || got.Key() != want.Key() {
				return fmt.Errorf("node %d prop %s: %v, want %v", id, k, got, want)
			}
		}
	}
	for id, mr := range m.Rels {
		r, err := db.RelByID(id)
		if err != nil {
			return fmt.Errorf("rel %d: %w", id, err)
		}
		if r.Type != mr.Type || r.Src != mr.Src || r.Dst != mr.Dst {
			return fmt.Errorf("rel %d: (%d,%d,%d), want (%d,%d,%d)",
				id, r.Type, r.Src, r.Dst, mr.Type, mr.Src, mr.Dst)
		}
	}
	return nil
}

// CheckIntegrity runs the engine's structural check on the current DB.
func (h *Harness) CheckIntegrity() error {
	if r := h.DB.CheckIntegrity(); !r.OK() {
		return fmt.Errorf("integrity violations after recovery:\n%s", r)
	}
	return nil
}
