package crashtest

import (
	"fmt"
	"testing"

	"twigraph/internal/neodb"
	"twigraph/internal/vfs"
)

// Group-commit import crash tests. With Config.ImportGroupCommit set the
// batch importer redo-logs every pipeline batch as one WAL frame and
// fsyncs it before applying, while the store files stay volatile until
// the final checkpoint. The durability contract is therefore sharper
// than the classic import's empty/complete/flagged trichotomy: a crash
// at any WAL-sync boundary must recover to an exact prefix of whole
// batches — never a half-applied batch — and that prefix must pass the
// integrity check.

// gcStoreFiles are the record stores whose durable growth marks the
// start of the final checkpoint (before it, only the WAL and catalog
// are synced).
var gcStoreFiles = []string{
	"/db/nodes.store", "/db/rels.store", "/db/props.store", "/db/strings.store", "/db/groups.store",
}

// TestImportGroupCommitCrashRecoversBatchPrefix crashes a group-commit
// import after every fsync boundary in turn. writeTinyCSVDir with
// batchRows=2 produces a fixed frame sequence — users [2,1], tweets [2],
// hashtags [1], dense marks, follows [2,2], posts [2], mentions [1],
// tags [1] — so the set of legal recovered (nodes, edges) states is
// exactly the cumulative batch prefixes below. While the crash lands
// before the final checkpoint begins, recovery must hit one of them
// with a clean integrity report; once store syncs are in flight a torn
// checkpoint may additionally surface as a *detected* violation.
func TestImportGroupCommitCrashRecoversBatchPrefix(t *testing.T) {
	csvDir := writeTinyCSVDir(t)
	const batchRows = 2
	type state struct{ nodes, edges uint64 }
	validPrefix := map[state]bool{
		{0, 0}: true, // no frame durable
		{2, 0}: true, {3, 0}: true, {5, 0}: true, // node batches
		{6, 0}: true, // all nodes (and possibly the dense frame)
		{6, 2}: true, {6, 4}: true, {6, 6}: true, {6, 7}: true, {6, 8}: true, // edge batches
	}

	completed := false
	for n := uint64(1); n <= 200 && !completed; n++ {
		t.Run(fmt.Sprintf("sync%03d", n), func(t *testing.T) {
			fs := vfs.NewFaultFS()
			cfg := neodb.Config{CachePages: 256, FS: fs, ImportGroupCommit: true, ImportWorkers: 2}
			db, err := neodb.Open("/db", cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Durable store sizes before any import work: growth past
			// these marks means the final checkpoint has started.
			durableAtOpen := make(map[string]int, len(gcStoreFiles))
			for _, f := range gcStoreFiles {
				durableAtOpen[f] = fs.DurableLen(f)
			}
			fs.CrashAfter(vfs.OpSync, n)
			imp := db.NewImporter(batchRows, nil)
			nodes, edges := neodb.ImportDirLayout(csvDir)
			_, runErr := imp.Run(nodes, edges)
			if runErr == nil {
				// The import finished before the crash point — possibly
				// with the halt landing exactly after its final fsync, in
				// which case success is only honest if the whole dataset
				// is already durable. The post-crash check below verifies
				// that with the full-count expectation.
				completed = true
			}
			checkpointStarted := false
			for _, f := range gcStoreFiles {
				if fs.DurableLen(f) != durableAtOpen[f] {
					checkpointStarted = true
				}
			}
			fs.Crash()
			db2, err := neodb.Open("/db", cfg)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			r := db2.CheckIntegrity()
			got := state{db2.NodeCount(), db2.RelCount()}
			switch {
			case runErr == nil:
				if got != (state{6, 8}) || !r.OK() {
					t.Errorf("import reported success but crash recovery sees %d nodes / %d edges (integrity ok=%v), want 6/8 clean", got.nodes, got.edges, r.OK())
				}
			case !checkpointStarted:
				// Pure WAL-boundary crash: recovery must be an exact
				// batch prefix and clean.
				if !r.OK() {
					t.Errorf("mid-import crash recovered with violations:\n%s", r)
				}
				if !validPrefix[got] {
					t.Errorf("recovered %d nodes / %d edges: not a whole-batch prefix", got.nodes, got.edges)
				}
			case validPrefix[got] && r.OK():
				// Crash during the checkpoint with replay covering it.
			case !r.OK():
				// Torn checkpoint, detected. Honest.
			default:
				t.Errorf("silent torn checkpoint: %d nodes, %d edges, integrity clean", got.nodes, got.edges)
			}
		})
	}
	if !completed {
		t.Fatal("import never completed within 200 sync boundaries")
	}
}

// TestImportGroupCommitCompletes runs a group-commit import with no
// fault, checks the frame accounting (one group commit per batch), and
// verifies that a crash after completion loses nothing — the final
// checkpoint plus truncated WAL carry the whole dataset.
func TestImportGroupCommitCompletes(t *testing.T) {
	csvDir := writeTinyCSVDir(t)
	fs := vfs.NewFaultFS()
	cfg := neodb.Config{CachePages: 256, FS: fs, ImportGroupCommit: true, ImportWorkers: 2}
	db, err := neodb.Open("/db", cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := db.NewImporter(2, nil)
	nodes, edges := neodb.ImportDirLayout(csvDir)
	rep, err := imp.Run(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 6 || rep.Edges != 8 {
		t.Fatalf("imported %d nodes / %d edges, want 6/8", rep.Nodes, rep.Edges)
	}
	// At batchRows=2 the fixture logs 2+1+1 node frames, 1 dense frame,
	// and 2+1+1+1 edge frames: 10 group commits.
	if got := db.Obs().Counter(neodb.CWALGroupCommits).Load(); got != 10 {
		t.Errorf("wal_group_commits = %d, want 10", got)
	}
	fs.Crash()
	db2, err := neodb.Open("/db", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got, want := db2.NodeCount(), uint64(6); got != want {
		t.Errorf("nodes after crash = %d, want %d", got, want)
	}
	if got, want := db2.RelCount(), uint64(8); got != want {
		t.Errorf("rels after crash = %d, want %d", got, want)
	}
	if r := db2.CheckIntegrity(); !r.OK() {
		t.Errorf("violations after post-completion crash:\n%s", r)
	}
}
