// Package wal implements the redo-style write-ahead log behind the
// Neo4j-analog engine's transactions. Committed transactions append
// their logical changes here before the store files are mutated, so a
// crash between commit and page flush is recoverable by replay.
//
// Each entry is framed as
//
//	length  uint32   payload length
//	kind    uint8    caller-defined record type
//	lsn     uint64   monotonically increasing sequence number
//	crc     uint32   IEEE CRC-32 of kind, lsn and payload
//	payload [length]byte
//
// Replay stops cleanly at the first torn or corrupt frame, which is the
// standard redo-log recovery contract.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"twigraph/internal/obs"
	"twigraph/internal/vfs"
)

const frameHeader = 4 + 1 + 8 + 4

// ErrPoisoned marks a log whose fsync has failed. The kernel may have
// discarded the dirty pages on the failed fsync, so the durability of
// everything since the last successful sync is unknown; accepting more
// appends would silently widen the hole (the classic fsync-gate bug).
// The log refuses all further work until reopened.
var ErrPoisoned = errors.New("wal: log poisoned by earlier fsync failure")

// Log is an append-only write-ahead log. It is safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	file     vfs.File
	nextLSN  uint64
	offset   int64 // append position
	appends  uint64
	syncs    uint64
	poisoned error // first fsync failure; sticky until reopen

	cAppends   *obs.Counter // registry counters, nil until Instrument
	cSyncs     *obs.Counter
	cSyncFails *obs.Counter
	trace      *obs.TraceBuffer // nil until TraceTo
}

// Instrument mirrors the log's activity counters into the engine's
// observability registry. syncFailures may be nil.
func (l *Log) Instrument(appends, syncs, syncFailures *obs.Counter) {
	l.mu.Lock()
	l.cAppends, l.cSyncs, l.cSyncFails = appends, syncs, syncFailures
	l.mu.Unlock()
}

// TraceTo directs one complete event per fsync (cat "wal") into buf
// when the buffer is enabled — fsync stalls are the dominant write-path
// latency, and the timeline makes them visible next to query spans.
func (l *Log) TraceTo(buf *obs.TraceBuffer) {
	l.mu.Lock()
	l.trace = buf
	l.mu.Unlock()
}

// Stats reports WAL activity counters.
type Stats struct {
	Appends uint64
	Syncs   uint64
	Bytes   int64
}

// Open opens or creates the log at path and positions the append cursor
// after the last intact entry (truncating any trailing torn frame).
func Open(path string) (*Log, error) {
	return OpenFS(vfs.OS, path)
}

// OpenFS is Open on an explicit filesystem (fault-injection tests swap
// in a vfs.FaultFS; production code uses Open).
func OpenFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{file: f, nextLSN: 1}
	if err := l.recoverTail(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recoverTail scans the log to find the end of the intact prefix, sets
// the append offset and next LSN, and truncates any torn tail.
func (l *Log) recoverTail() error {
	off := int64(0)
	err := l.scan(func(lsn uint64, kind uint8, payload []byte, end int64) error {
		off = end
		l.nextLSN = lsn + 1
		return nil
	})
	if err != nil {
		return err
	}
	l.offset = off
	return l.file.Truncate(off)
}

// Append writes one entry and returns its LSN. The entry is buffered by
// the OS; call Sync to force durability.
func (l *Log) Append(kind uint8, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return 0, fmt.Errorf("%w: %v", ErrPoisoned, l.poisoned)
	}
	lsn := l.nextLSN
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	buf[4] = kind
	binary.LittleEndian.PutUint64(buf[5:13], lsn)
	crc := crc32.NewIEEE()
	crc.Write(buf[4:13])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(buf[13:17], crc.Sum32())
	copy(buf[frameHeader:], payload)
	if _, err := l.file.WriteAt(buf, l.offset); err != nil {
		return 0, err
	}
	l.offset += int64(len(buf))
	l.nextLSN++
	l.appends++
	if l.cAppends != nil {
		l.cAppends.Inc()
	}
	return lsn, nil
}

// Sync forces all appended entries to stable storage. A failure is
// sticky: the log is poisoned and every later Append or Sync returns
// ErrPoisoned, because the durability of unsynced entries is unknown
// once an fsync has failed.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, l.poisoned)
	}
	l.syncs++
	if l.cSyncs != nil {
		l.cSyncs.Inc()
	}
	start := time.Now()
	err := l.file.Sync()
	if l.trace.Enabled() {
		args := map[string]any{"bytes": l.offset}
		if err != nil {
			args["error"] = err.Error()
		}
		l.trace.Complete("wal", "wal_sync", 1, start, time.Since(start), args)
	}
	if err != nil {
		l.poisoned = err
		if l.cSyncFails != nil {
			l.cSyncFails.Inc()
		}
		return err
	}
	return nil
}

// Offset returns the current append position. A caller about to append
// a multi-entry batch can capture it and Rewind on failure.
func (l *Log) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offset
}

// Rewind abandons every entry appended after off, moving the append
// cursor back so the abandoned bytes are overwritten (and truncated
// best-effort). It is only safe for entries that have never been
// synced: a batch writer that fails partway through uses it to keep a
// half-appended batch out of the replayable prefix. On a poisoned log
// Rewind is a no-op — the cursor no longer matters and the volatile
// tail's durability is unknown.
func (l *Log) Rewind(off int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil || off >= l.offset {
		return
	}
	l.offset = off
	l.file.Truncate(off) // best-effort: CRC framing also fences remnants
}

// Poisoned returns the sticky fsync failure, or nil.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}

// Replay invokes fn for every intact entry in order. It is typically
// called once on startup before new appends.
func (l *Log) Replay(fn func(lsn uint64, kind uint8, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scan(func(lsn uint64, kind uint8, payload []byte, _ int64) error {
		return fn(lsn, kind, payload)
	})
}

// scan reads intact frames from the start, calling fn with each frame
// and the offset just past it. Corrupt or torn frames end the scan
// without error. Caller holds l.mu (or is Open-time single threaded).
func (l *Log) scan(fn func(lsn uint64, kind uint8, payload []byte, end int64) error) error {
	off := int64(0)
	hdr := make([]byte, frameHeader)
	for {
		if _, err := l.file.ReadAt(hdr, off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > 1<<30 {
			return nil // implausible length: torn frame
		}
		payload := make([]byte, n)
		if _, err := l.file.ReadAt(payload, off+frameHeader); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[4:13])
		crc.Write(payload)
		if crc.Sum32() != binary.LittleEndian.Uint32(hdr[13:17]) {
			return nil // corrupt frame ends the intact prefix
		}
		lsn := binary.LittleEndian.Uint64(hdr[5:13])
		end := off + frameHeader + int64(n)
		if err := fn(lsn, hdr[4], payload, end); err != nil {
			return err
		}
		off = end
	}
}

// Truncate discards the whole log after a checkpoint has made the store
// files durable. LSNs keep increasing across truncation.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, l.poisoned)
	}
	if err := l.file.Truncate(0); err != nil {
		return err
	}
	l.offset = 0
	return l.file.Sync()
}

// Stats returns activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.appends, Syncs: l.syncs, Bytes: l.offset}
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	if err := l.file.Sync(); err != nil {
		l.file.Close()
		return err
	}
	err := l.file.Close()
	l.file = nil
	return err
}
