package wal

import (
	"errors"
	"math/rand"

	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"twigraph/internal/vfs"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTemp(t)
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(byte(i%3), []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Errorf("lsn = %d, want %d", lsn, i+1)
		}
	}
	var seen int
	err := l.Replay(func(lsn uint64, kind uint8, payload []byte) error {
		if lsn != uint64(seen+1) {
			t.Errorf("replay lsn %d at position %d", lsn, seen)
		}
		want := fmt.Sprintf("payload-%d", seen)
		if string(payload) != want {
			t.Errorf("payload %q, want %q", payload, want)
		}
		if kind != byte(seen%3) {
			t.Errorf("kind %d, want %d", kind, seen%3)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("replayed %d entries", seen)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("a"))
	l.Append(1, []byte("b"))
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lsn, err := l2.Append(1, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Errorf("lsn after reopen = %d, want 3", lsn)
	}
	var got []string
	l2.Replay(func(_ uint64, _ uint8, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 3 || got[2] != "c" {
		t.Errorf("replay = %v", got)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("intact"))
	l.Append(1, []byte("to-be-torn"))
	l.Close()

	// Tear the final frame: chop 3 bytes off the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	l2.Replay(func(_ uint64, _ uint8, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 1 || got[0] != "intact" {
		t.Errorf("replay after tear = %v", got)
	}
	// New appends reuse the truncated region cleanly.
	if lsn, _ := l2.Append(1, []byte("new")); lsn != 2 {
		t.Errorf("lsn after torn recovery = %d, want 2", lsn)
	}
}

func TestCorruptMiddleFrameEndsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, bytes.Repeat([]byte("a"), 50))
	l.Append(1, bytes.Repeat([]byte("b"), 50))
	l.Append(1, bytes.Repeat([]byte("c"), 50))
	l.Close()

	data, _ := os.ReadFile(path)
	data[frameHeader+50+frameHeader+10] ^= 0xFF // flip a byte inside frame 2
	os.WriteFile(path, data, 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(uint64, uint8, []byte) error { n++; return nil })
	if n != 1 {
		t.Errorf("replayed %d frames past corruption, want 1", n)
	}
}

func TestTruncateAfterCheckpoint(t *testing.T) {
	l, _ := openTemp(t)
	l.Append(1, []byte("x"))
	l.Append(1, []byte("y"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Replay(func(uint64, uint8, []byte) error { n++; return nil })
	if n != 0 {
		t.Errorf("replay after truncate saw %d entries", n)
	}
	// LSNs keep increasing.
	if lsn, _ := l.Append(1, []byte("z")); lsn != 3 {
		t.Errorf("lsn after truncate = %d, want 3", lsn)
	}
}

func TestStats(t *testing.T) {
	l, _ := openTemp(t)
	l.Append(1, []byte("abc"))
	l.Sync()
	s := l.Stats()
	if s.Appends != 1 || s.Syncs != 1 || s.Bytes != int64(frameHeader+3) {
		t.Errorf("stats = %+v", s)
	}
}

func TestEmptyPayload(t *testing.T) {
	l, _ := openTemp(t)
	if _, err := l.Append(9, nil); err != nil {
		t.Fatal(err)
	}
	var kinds []uint8
	l.Replay(func(_ uint64, k uint8, p []byte) error {
		if len(p) != 0 {
			t.Errorf("payload = %v", p)
		}
		kinds = append(kinds, k)
		return nil
	})
	if len(kinds) != 1 || kinds[0] != 9 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCloseIdempotent(t *testing.T) {
	l, _ := openTemp(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultRecoveryProperty is the recovery property test: for many
// random logs, any truncation or single-bit flip of the on-disk bytes
// must recover to an intact prefix of the original entries — the right
// payloads in the right order, never a corrupted payload and never an
// entry out of sequence.
func TestFaultRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		l, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		var payloads [][]byte
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			p := make([]byte, rng.Intn(200))
			rng.Read(p)
			payloads = append(payloads, p)
			if _, err := l.Append(byte(1+i%5), p); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		damaged := make([]byte, len(raw))
		copy(damaged, raw)
		switch rng.Intn(3) {
		case 0: // truncate at a random byte
			damaged = damaged[:rng.Intn(len(damaged)+1)]
		case 1: // flip a single bit
			bit := rng.Intn(len(damaged) * 8)
			damaged[bit/8] ^= 1 << (bit % 8)
		case 2: // truncate AND flip within the remainder
			damaged = damaged[:1+rng.Intn(len(damaged))]
			bit := rng.Intn(len(damaged) * 8)
			damaged[bit/8] ^= 1 << (bit % 8)
		}
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(path)
		if err != nil {
			t.Fatalf("trial %d: reopen of damaged log: %v", trial, err)
		}
		i := 0
		err = l2.Replay(func(lsn uint64, kind uint8, payload []byte) error {
			if i >= len(payloads) {
				return fmt.Errorf("replayed %d entries, only %d written", i+1, len(payloads))
			}
			if lsn != uint64(i+1) {
				return fmt.Errorf("entry %d has lsn %d", i, lsn)
			}
			if kind != byte(1+i%5) {
				return fmt.Errorf("entry %d has kind %d", i, kind)
			}
			if !bytes.Equal(payload, payloads[i]) {
				return fmt.Errorf("entry %d payload corrupted", i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Recovery must keep accepting appends after the damage.
		if _, err := l2.Append(9, []byte("after")); err != nil {
			t.Fatalf("trial %d: append after recovery: %v", trial, err)
		}
		l2.Close()
	}
}

// TestPoisonedLogRefusesEverything drives the sticky-poison contract
// through a scripted fsync failure: after one failed Sync, Append, Sync
// and Truncate all refuse with ErrPoisoned, and reopening the file
// restores service.
func TestPoisonedLogRefusesEverything(t *testing.T) {
	fs := vfs.NewFaultFS()
	l, err := OpenFS(fs, "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.AddFault(vfs.Fault{Op: vfs.OpSync, Nth: 1, Kind: vfs.KindErr})
	if _, err := l.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("faulted fsync reported success")
	}
	if _, err := l.Append(1, []byte("c")); !errors.Is(err, ErrPoisoned) {
		t.Errorf("append on poisoned log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Errorf("sync on poisoned log: %v", err)
	}
	if err := l.Truncate(); !errors.Is(err, ErrPoisoned) {
		t.Errorf("truncate on poisoned log: %v", err)
	}
	if err := l.Poisoned(); err == nil {
		t.Error("Poisoned() returned nil")
	}
	l.Close()

	// A process restart after a real fsync failure: the page cache is
	// gone and the kernel's error state cleared.
	fs.Crash()
	l2, err := OpenFS(fs, "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Append(1, []byte("d")); err != nil {
		t.Errorf("append after reopen: %v", err)
	}
	if err := l2.Sync(); err != nil {
		t.Errorf("sync after reopen: %v", err)
	}
}

// TestRewindAbandonsUnsyncedEntries verifies a batch writer can back
// out a half-appended batch: entries appended after the captured offset
// never reach the replayable prefix.
func TestRewindAbandonsUnsyncedEntries(t *testing.T) {
	l, path := openTemp(t)
	if _, err := l.Append(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	pos := l.Offset()
	if _, err := l.Append(2, []byte("abandon-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, []byte("abandon-2")); err != nil {
		t.Fatal(err)
	}
	l.Rewind(pos)
	if _, err := l.Append(3, []byte("next")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	l2.Replay(func(_ uint64, _ uint8, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if len(got) != 2 || got[0] != "keep" || got[1] != "next" {
		t.Errorf("replay after rewind: %q", got)
	}
}
