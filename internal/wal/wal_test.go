package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTemp(t)
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(byte(i%3), []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Errorf("lsn = %d, want %d", lsn, i+1)
		}
	}
	var seen int
	err := l.Replay(func(lsn uint64, kind uint8, payload []byte) error {
		if lsn != uint64(seen+1) {
			t.Errorf("replay lsn %d at position %d", lsn, seen)
		}
		want := fmt.Sprintf("payload-%d", seen)
		if string(payload) != want {
			t.Errorf("payload %q, want %q", payload, want)
		}
		if kind != byte(seen%3) {
			t.Errorf("kind %d, want %d", kind, seen%3)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("replayed %d entries", seen)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("a"))
	l.Append(1, []byte("b"))
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lsn, err := l2.Append(1, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Errorf("lsn after reopen = %d, want 3", lsn)
	}
	var got []string
	l2.Replay(func(_ uint64, _ uint8, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 3 || got[2] != "c" {
		t.Errorf("replay = %v", got)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("intact"))
	l.Append(1, []byte("to-be-torn"))
	l.Close()

	// Tear the final frame: chop 3 bytes off the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	l2.Replay(func(_ uint64, _ uint8, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 1 || got[0] != "intact" {
		t.Errorf("replay after tear = %v", got)
	}
	// New appends reuse the truncated region cleanly.
	if lsn, _ := l2.Append(1, []byte("new")); lsn != 2 {
		t.Errorf("lsn after torn recovery = %d, want 2", lsn)
	}
}

func TestCorruptMiddleFrameEndsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, bytes.Repeat([]byte("a"), 50))
	l.Append(1, bytes.Repeat([]byte("b"), 50))
	l.Append(1, bytes.Repeat([]byte("c"), 50))
	l.Close()

	data, _ := os.ReadFile(path)
	data[frameHeader+50+frameHeader+10] ^= 0xFF // flip a byte inside frame 2
	os.WriteFile(path, data, 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(uint64, uint8, []byte) error { n++; return nil })
	if n != 1 {
		t.Errorf("replayed %d frames past corruption, want 1", n)
	}
}

func TestTruncateAfterCheckpoint(t *testing.T) {
	l, _ := openTemp(t)
	l.Append(1, []byte("x"))
	l.Append(1, []byte("y"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Replay(func(uint64, uint8, []byte) error { n++; return nil })
	if n != 0 {
		t.Errorf("replay after truncate saw %d entries", n)
	}
	// LSNs keep increasing.
	if lsn, _ := l.Append(1, []byte("z")); lsn != 3 {
		t.Errorf("lsn after truncate = %d, want 3", lsn)
	}
}

func TestStats(t *testing.T) {
	l, _ := openTemp(t)
	l.Append(1, []byte("abc"))
	l.Sync()
	s := l.Stats()
	if s.Appends != 1 || s.Syncs != 1 || s.Bytes != int64(frameHeader+3) {
		t.Errorf("stats = %+v", s)
	}
}

func TestEmptyPayload(t *testing.T) {
	l, _ := openTemp(t)
	if _, err := l.Append(9, nil); err != nil {
		t.Fatal(err)
	}
	var kinds []uint8
	l.Replay(func(_ uint64, k uint8, p []byte) error {
		if len(p) != 0 {
			t.Errorf("payload = %v", p)
		}
		kinds = append(kinds, k)
		return nil
	})
	if len(kinds) != 1 || kinds[0] != 9 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCloseIdempotent(t *testing.T) {
	l, _ := openTemp(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
