// Package leakcheck asserts, at test end, that a test left no
// goroutines behind — the serving layer's sessions, producers and the
// driver's retry loops must all terminate with their owners. It
// snapshots the goroutine count up front and polls for return to that
// level in Cleanup, tolerating runtime-internal background goroutines
// by comparing counts rather than stacks (stdlib-only stand-in for
// goleak).
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check registers a cleanup that fails the test if the goroutine count
// has not returned to its starting level within 5 seconds. Call it
// first in the test, before anything spawns.
func Check(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("leakcheck: %d goroutines at start, %d at end; stacks:\n%s",
			before, now, condense(string(buf[:n])))
	})
}

// condense trims each goroutine's stack to its header and top frame —
// enough to identify a leak without pages of output.
func condense(stacks string) string {
	var b strings.Builder
	for _, g := range strings.Split(stacks, "\n\n") {
		lines := strings.Split(g, "\n")
		keep := lines
		if len(keep) > 3 {
			keep = keep[:3]
		}
		b.WriteString(strings.Join(keep, "\n"))
		b.WriteString("\n\n")
	}
	return b.String()
}
