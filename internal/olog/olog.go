// Package olog is the structured logging tier: a thin wrapper over
// log/slog's JSON handler whose level (including "off", the default)
// can be changed at runtime, so an interactive session or a daemon can
// dial logging up without rebuilding anything. Every slow-query line
// carries the query ID and fingerprint that the obs spans and the
// qstats rows also carry — the correlation key across logs, traces and
// statistics.
//
// Loggers start disabled ("off") writing to stderr; `twiql :log
// <level>` and future daemon flags turn them on.
package olog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"twigraph/internal/obs"
)

// LevelOff is above every slog level, so nothing is emitted.
const LevelOff = slog.Level(math.MaxInt32)

// Logger is a leveled JSON logger. The zero value is not usable; call
// New. All methods are safe for concurrent use, and a nil *Logger is a
// no-op receiver so call sites need no guards.
type Logger struct {
	component string

	mu    sync.Mutex
	level slog.LevelVar
	out   io.Writer
	sl    *slog.Logger
}

// New creates a logger for one component ("neo", "sparksee", ...)
// writing to stderr at level off.
func New(component string) *Logger {
	l := &Logger{component: component}
	l.level.Set(LevelOff)
	l.setOutputLocked(os.Stderr)
	return l
}

// setOutputLocked (re)builds the slog handler for w. Caller holds mu
// or has exclusive access.
func (l *Logger) setOutputLocked(w io.Writer) {
	l.out = w
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: &l.level})
	l.sl = slog.New(h).With("component", l.component)
}

// SetOutput redirects the logger (twiql points it at the shell's
// stdout so :log output interleaves with results).
func (l *Logger) SetOutput(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setOutputLocked(w)
}

// ParseLevel maps a user-facing level name onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	case "off":
		return LevelOff, nil
	}
	return 0, fmt.Errorf("olog: unknown level %q (debug|info|warn|error|off)", s)
}

// SetLevel sets the minimum emitted level by name.
func (l *Logger) SetLevel(name string) error {
	if l == nil {
		return nil
	}
	lv, err := ParseLevel(name)
	if err != nil {
		return err
	}
	l.level.Set(lv)
	return nil
}

// Level returns the current level's user-facing name.
func (l *Logger) Level() string {
	if l == nil {
		return "off"
	}
	switch lv := l.level.Level(); {
	case lv == LevelOff:
		return "off"
	case lv <= slog.LevelDebug:
		return "debug"
	case lv <= slog.LevelInfo:
		return "info"
	case lv <= slog.LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Enabled reports whether a record at the given level would be
// emitted.
func (l *Logger) Enabled(lv slog.Level) bool {
	return l != nil && lv >= l.level.Level() && l.level.Level() != LevelOff
}

func (l *Logger) log(lv slog.Level, msg string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	sl := l.sl
	l.mu.Unlock()
	sl.Log(context.Background(), lv, msg, args...)
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args...) }

// Info emits an info-level record.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args...) }

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args...) }

// Error emits an error-level record.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args...) }

// SlowQuery emits the structured form of one slow-query ring entry:
// the span's name, duration, status, rows, query ID and fingerprint,
// plus every watched-counter delta — the same fields the /querystats
// row and the exported trace span carry, keyed by the same query_id.
// Aborted queries log at warn, completed ones at info.
func (l *Logger) SlowQuery(snap *obs.SpanSnapshot) {
	if l == nil || snap == nil {
		return
	}
	lv := slog.LevelInfo
	if snap.Status != "" && snap.Status != obs.StatusCompleted {
		lv = slog.LevelWarn
	}
	if !l.Enabled(lv) {
		return
	}
	args := []any{
		"query", snap.Name,
		"duration_ms", float64(snap.Duration) / float64(time.Millisecond),
		"status", snap.Status,
	}
	if snap.QueryID != 0 {
		args = append(args, "query_id", snap.QueryID)
	}
	if snap.Fingerprint != "" {
		args = append(args, "fingerprint", snap.Fingerprint)
	}
	if snap.Rows >= 0 {
		args = append(args, "rows", snap.Rows)
	}
	for _, k := range sortedKeys(snap.Deltas) {
		args = append(args, k, snap.Deltas[k])
	}
	l.log(lv, "slow query", args...)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
