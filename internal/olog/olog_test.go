package olog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"twigraph/internal/obs"
)

func TestLoggerOffByDefault(t *testing.T) {
	var buf bytes.Buffer
	l := New("neo")
	l.SetOutput(&buf)
	l.Info("hello")
	l.Error("boom")
	if buf.Len() != 0 {
		t.Fatalf("off logger emitted: %q", buf.String())
	}
	if l.Level() != "off" {
		t.Fatalf("default level %q, want off", l.Level())
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New("neo")
	l.SetOutput(&buf)
	if err := l.SetLevel("warn"); err != nil {
		t.Fatal(err)
	}
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := nonEmptyLines(buf.String())
	if len(lines) != 2 {
		t.Fatalf("warn level emitted %d lines, want 2: %v", len(lines), lines)
	}
	if err := l.SetLevel("bogus"); err == nil {
		t.Fatal("SetLevel accepted bogus level")
	}
	if l.Level() != "warn" {
		t.Fatalf("failed SetLevel changed level to %q", l.Level())
	}
}

func TestLoggerEmitsJSONWithComponent(t *testing.T) {
	var buf bytes.Buffer
	l := New("sparksee")
	l.SetOutput(&buf)
	if err := l.SetLevel("info"); err != nil {
		t.Fatal(err)
	}
	l.Info("query done", "rows", 5)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["component"] != "sparksee" || rec["msg"] != "query done" || rec["rows"] != float64(5) {
		t.Fatalf("bad record: %v", rec)
	}
}

func TestSlowQueryCarriesCorrelationFields(t *testing.T) {
	var buf bytes.Buffer
	l := New("neo")
	l.SetOutput(&buf)
	if err := l.SetLevel("info"); err != nil {
		t.Fatal(err)
	}
	l.SlowQuery(&obs.SpanSnapshot{
		Name:        "cypher: MATCH (u:user) RETURN u",
		Duration:    25 * time.Millisecond,
		Status:      obs.StatusCompleted,
		Rows:        9,
		QueryID:     314,
		Fingerprint: "deadbeefcafef00d",
		Deltas:      map[string]uint64{"record_fetches": 120},
	})
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["query_id"] != float64(314) || rec["fingerprint"] != "deadbeefcafef00d" {
		t.Fatalf("missing correlation fields: %v", rec)
	}
	if rec["record_fetches"] != float64(120) || rec["rows"] != float64(9) {
		t.Fatalf("missing deltas/rows: %v", rec)
	}
	if rec["level"] != "INFO" {
		t.Fatalf("completed slow query at %v, want INFO", rec["level"])
	}

	// Aborted queries escalate to warn.
	buf.Reset()
	rec = map[string]any{}
	l.SlowQuery(&obs.SpanSnapshot{Name: "q", Status: obs.StatusTimedOut, Rows: -1})
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["level"] != "WARN" {
		t.Fatalf("timed-out slow query at %v, want WARN", rec["level"])
	}
	if _, present := rec["rows"]; present {
		t.Fatalf("rows=-1 should be omitted: %v", rec)
	}
}

func TestNilLoggerIsNoop(t *testing.T) {
	var l *Logger
	l.Info("x")
	l.SlowQuery(&obs.SpanSnapshot{Name: "q"})
	l.SetOutput(&bytes.Buffer{})
	if err := l.SetLevel("info"); err != nil {
		t.Fatal(err)
	}
	if l.Level() != "off" {
		t.Fatalf("nil logger level %q", l.Level())
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.TrimSpace(ln) != "" {
			out = append(out, ln)
		}
	}
	return out
}
