package core

import (
	"errors"
	"testing"
	"time"

	"twigraph/internal/twitter"
)

// fakeStore counts invocations and returns fixed-size results.
type fakeStore struct {
	calls map[string]int
	fail  bool
}

func newFakeStore() *fakeStore { return &fakeStore{calls: map[string]int{}} }

func (f *fakeStore) Name() string { return "fake" }
func (f *fakeStore) Close() error { return nil }

func (f *fakeStore) bump(name string, n int) ([]int64, error) {
	f.calls[name]++
	if f.fail {
		return nil, errors.New("boom")
	}
	out := make([]int64, n)
	return out, nil
}

func (f *fakeStore) UsersWithFollowersOver(int64) ([]int64, error) { return f.bump("q11", 3) }
func (f *fakeStore) Followees(int64) ([]int64, error)              { return f.bump("q21", 2) }
func (f *fakeStore) TweetsOfFollowees(int64) ([]int64, error)      { return f.bump("q22", 4) }
func (f *fakeStore) HashtagsOfFollowees(int64) ([]string, error) {
	_, err := f.bump("q23", 0)
	return []string{"a"}, err
}
func (f *fakeStore) CoMentionedUsers(int64, int) ([]twitter.Counted, error) {
	_, err := f.bump("q31", 0)
	return []twitter.Counted{{ID: 1, Count: 2}}, err
}
func (f *fakeStore) CoOccurringHashtags(string, int) ([]twitter.CountedTag, error) {
	_, err := f.bump("q32", 0)
	return nil, err
}
func (f *fakeStore) RecommendFollowees(int64, int) ([]twitter.Counted, error) {
	_, err := f.bump("q41", 0)
	return nil, err
}
func (f *fakeStore) RecommendFollowersOfFollowees(int64, int) ([]twitter.Counted, error) {
	_, err := f.bump("q42", 0)
	return nil, err
}
func (f *fakeStore) CurrentInfluence(int64, int) ([]twitter.Counted, error) {
	_, err := f.bump("q51", 0)
	return nil, err
}
func (f *fakeStore) PotentialInfluence(int64, int) ([]twitter.Counted, error) {
	_, err := f.bump("q52", 0)
	return nil, err
}
func (f *fakeStore) ShortestPathLength(int64, int64, int) (int, bool, error) {
	f.calls["q61"]++
	if f.fail {
		return 0, false, errors.New("boom")
	}
	return 2, true, nil
}

func TestWorkloadCatalogue(t *testing.T) {
	specs := Workload()
	if len(specs) != 11 {
		t.Fatalf("workload has %d entries, want 11 (Table 2)", len(specs))
	}
	ids := map[QueryID]bool{}
	starred := 0
	for _, s := range specs {
		if ids[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		ids[s.ID] = true
		if s.Category == "" || s.Description == "" || s.Run == nil {
			t.Errorf("%s incomplete", s.ID)
		}
		if s.Starred {
			starred++
		}
	}
	// The paper stars Q2.3, Q3.2, Q5.1 and Q5.2.
	if starred != 4 {
		t.Errorf("starred = %d, want 4", starred)
	}
	for _, want := range []QueryID{Q11, Q21, Q22, Q23, Q31, Q32, Q41, Q42, Q51, Q52, Q61} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup(Q41)
	if err != nil || s.ID != Q41 {
		t.Errorf("Lookup(Q41) = %+v, %v", s, err)
	}
	if _, err := Lookup("Q9.9"); err == nil {
		t.Error("ghost query found")
	}
}

func TestAllSpecsRunAgainstStore(t *testing.T) {
	fs := newFakeStore()
	for _, spec := range Workload() {
		rows, err := spec.Run(fs, Params{UID: 1, UID2: 2, Tag: "x", TopN: 5, MaxHops: 3})
		if err != nil {
			t.Errorf("%s: %v", spec.ID, err)
		}
		_ = rows
	}
	if len(fs.calls) != 11 {
		t.Errorf("store methods exercised: %d, want 11", len(fs.calls))
	}
}

func TestMeasureProtocol(t *testing.T) {
	fs := newFakeStore()
	r := Runner{MaxWarmup: 3, Runs: 10}
	spec, _ := Lookup(Q21)
	m, err := r.Measure(fs, spec, Params{UID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine != "fake" || m.ID != Q21 || m.Rows != 2 || m.Runs != 10 {
		t.Errorf("measurement = %+v", m)
	}
	// Warmup (≤3, ≥1 early-stop possible at 2) plus 10 timed runs.
	if fs.calls["q21"] < 11 || fs.calls["q21"] > 13 {
		t.Errorf("executions = %d", fs.calls["q21"])
	}
	if m.Mean <= 0 || m.Min > m.Mean || m.Max < m.Mean || m.Total < m.Mean {
		t.Errorf("timing stats inconsistent: %+v", m)
	}
}

func TestMeasureDefaults(t *testing.T) {
	fs := newFakeStore()
	spec, _ := Lookup(Q31)
	m, err := Runner{}.Measure(fs, spec, Params{UID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 10 {
		t.Errorf("default runs = %d", m.Runs)
	}
	if m.Params.TopN != 10 || m.Params.MaxHops != 3 {
		t.Errorf("defaults not applied: %+v", m.Params)
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	fs := newFakeStore()
	fs.fail = true
	spec, _ := Lookup(Q11)
	if _, err := DefaultRunner().Measure(fs, spec, Params{}); err == nil {
		t.Error("error swallowed")
	}
}

func TestStabilised(t *testing.T) {
	if !stabilised(100*time.Millisecond, 95*time.Millisecond) {
		t.Error("5% delta not stabilised")
	}
	if stabilised(100*time.Millisecond, 50*time.Millisecond) {
		t.Error("50% delta stabilised")
	}
	if stabilised(0, time.Millisecond) {
		t.Error("zero baseline stabilised")
	}
}
