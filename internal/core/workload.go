// Package core is the paper's primary contribution in executable form:
// the microblogging query workload of Table 2 as an engine-agnostic
// catalogue, plus the measurement protocol of §3.3 — warm the cache
// until execution time stabilises, then report the average over ten
// subsequent runs.
package core

import (
	"fmt"
	"time"

	"twigraph/internal/twitter"
)

// QueryID names one workload entry using the paper's numbering.
type QueryID string

// The Table 2 workload.
const (
	Q11 QueryID = "Q1.1" // Select
	Q21 QueryID = "Q2.1" // Adjacency (1-step)
	Q22 QueryID = "Q2.2" // Adjacency (2-step)
	Q23 QueryID = "Q2.3" // Adjacency (3-step)
	Q31 QueryID = "Q3.1" // Co-occurrence (mentions)
	Q32 QueryID = "Q3.2" // Co-occurrence (hashtags)
	Q41 QueryID = "Q4.1" // Recommendation (2-step followees)
	Q42 QueryID = "Q4.2" // Recommendation (followers of followees)
	Q51 QueryID = "Q5.1" // Influence (current)
	Q52 QueryID = "Q5.2" // Influence (potential)
	Q61 QueryID = "Q6.1" // Shortest path
)

// Params parameterises one query execution.
type Params struct {
	UID       int64  // source user (most queries)
	UID2      int64  // target user (Q6.1)
	Tag       string // hashtag (Q3.2)
	Threshold int64  // follower threshold (Q1.1)
	TopN      int    // result budget for top-n queries
	MaxHops   int    // hop bound (Q6.1); 0 means the paper's 3
}

func (p Params) withDefaults() Params {
	if p.TopN == 0 {
		p.TopN = 10
	}
	if p.MaxHops == 0 {
		p.MaxHops = 3
	}
	return p
}

// Spec describes one workload query.
type Spec struct {
	ID          QueryID
	Category    string
	Description string
	Starred     bool // the paper discusses these in detail (Table 2 ★)
	Run         func(s twitter.Store, p Params) (rows int, err error)
}

// Workload returns the Table 2 catalogue in order.
func Workload() []Spec {
	return []Spec{
		{
			ID: Q11, Category: "Select",
			Description: "All users with a follower count greater than a user-defined threshold",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.UsersWithFollowersOver(p.Threshold)
				return len(r), err
			},
		},
		{
			ID: Q21, Category: "Adjacency (1-step)",
			Description: "All the followees of a given user A",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.Followees(p.UID)
				return len(r), err
			},
		},
		{
			ID: Q22, Category: "Adjacency (2-step)",
			Description: "All the tweets posted by followees of A",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.TweetsOfFollowees(p.UID)
				return len(r), err
			},
		},
		{
			ID: Q23, Category: "Adjacency (3-step)", Starred: true,
			Description: "All the hashtags used by followees of A",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.HashtagsOfFollowees(p.UID)
				return len(r), err
			},
		},
		{
			ID: Q31, Category: "Co-occurrence",
			Description: "Top-n users most mentioned with user A",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.CoMentionedUsers(p.UID, p.TopN)
				return len(r), err
			},
		},
		{
			ID: Q32, Category: "Co-occurrence", Starred: true,
			Description: "Top-n most co-occurring hashtags with hashtag H",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.CoOccurringHashtags(p.Tag, p.TopN)
				return len(r), err
			},
		},
		{
			ID: Q41, Category: "Recommendation",
			Description: "Top-n followees of A's followees who A is not following yet",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.RecommendFollowees(p.UID, p.TopN)
				return len(r), err
			},
		},
		{
			ID: Q42, Category: "Recommendation",
			Description: "Top-n followers of A's followees who A is not following yet",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.RecommendFollowersOfFollowees(p.UID, p.TopN)
				return len(r), err
			},
		},
		{
			ID: Q51, Category: "Influence (current)", Starred: true,
			Description: "Top-n users who have mentioned A who are followers of A",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.CurrentInfluence(p.UID, p.TopN)
				return len(r), err
			},
		},
		{
			ID: Q52, Category: "Influence (potential)", Starred: true,
			Description: "Top-n users who have mentioned A but are not direct followers of A",
			Run: func(s twitter.Store, p Params) (int, error) {
				r, err := s.PotentialInfluence(p.UID, p.TopN)
				return len(r), err
			},
		},
		{
			ID: Q61, Category: "Shortest Path",
			Description: "Shortest path between two users connected by follows edges",
			Run: func(s twitter.Store, p Params) (int, error) {
				_, found, err := s.ShortestPathLength(p.UID, p.UID2, p.MaxHops)
				if !found {
					return 0, err
				}
				return 1, err
			},
		},
	}
}

// Lookup returns the spec with the given id.
func Lookup(id QueryID) (Spec, error) {
	for _, s := range Workload() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("core: unknown query %q", id)
}

// Runner implements the paper's measurement protocol.
type Runner struct {
	// MaxWarmup bounds warm-up executions (default 5). Warm-up ends
	// early once two consecutive runs differ by under 20%.
	MaxWarmup int
	// Runs is the number of timed executions averaged (the paper uses
	// 10).
	Runs int
}

// DefaultRunner matches §3.3: warm the cache, then average 10 runs.
func DefaultRunner() Runner { return Runner{MaxWarmup: 5, Runs: 10} }

// Measurement is the outcome of measuring one (engine, query, params)
// combination.
type Measurement struct {
	Engine string
	ID     QueryID
	Params Params
	Rows   int
	Runs   int
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
	Total  time.Duration
}

// Measure runs the protocol for one query.
func (r Runner) Measure(s twitter.Store, spec Spec, p Params) (Measurement, error) {
	p = p.withDefaults()
	if r.Runs <= 0 {
		r.Runs = 10
	}
	if r.MaxWarmup < 0 {
		r.MaxWarmup = 0
	}
	m := Measurement{Engine: s.Name(), ID: spec.ID, Params: p, Runs: r.Runs}

	// Warm-up until stabilised.
	var prev time.Duration
	for i := 0; i < r.MaxWarmup; i++ {
		start := time.Now()
		rows, err := spec.Run(s, p)
		if err != nil {
			return m, err
		}
		m.Rows = rows
		d := time.Since(start)
		if i > 0 && stabilised(prev, d) {
			break
		}
		prev = d
	}

	// Timed runs.
	m.Min = time.Duration(1<<62 - 1)
	for i := 0; i < r.Runs; i++ {
		start := time.Now()
		rows, err := spec.Run(s, p)
		if err != nil {
			return m, err
		}
		m.Rows = rows
		d := time.Since(start)
		m.Total += d
		if d < m.Min {
			m.Min = d
		}
		if d > m.Max {
			m.Max = d
		}
	}
	m.Mean = m.Total / time.Duration(r.Runs)
	return m, nil
}

// stabilised reports whether two consecutive warm-up times are within
// 20% of each other.
func stabilised(a, b time.Duration) bool {
	if a == 0 || b == 0 {
		return false
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff*5 <= a
}
