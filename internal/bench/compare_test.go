package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"twigraph/internal/obs"
)

// fixtureSnapshot builds a snapshot whose bench registry holds the
// given series, each observed with the given latencies (ns).
func fixtureSnapshot(t *testing.T, series map[string][]int64) Snapshot {
	t.Helper()
	reg := obs.NewRegistry()
	for name, obsv := range series {
		h := reg.Histogram(name)
		for _, v := range obsv {
			h.Observe(v)
		}
	}
	return Snapshot{Schema: SnapshotSchema, Experiment: "fixture", Bench: reg.Snapshot()}
}

func TestCompareSnapshots(t *testing.T) {
	ms := int64(1e6)
	old := fixtureSnapshot(t, map[string][]int64{
		"fig4a/neo":      {10 * ms, 10 * ms, 10 * ms, 12 * ms},
		"fig4a/sparksee": {20 * ms, 20 * ms, 20 * ms, 22 * ms},
		"gone/neo":       {5 * ms},
	})
	cur := fixtureSnapshot(t, map[string][]int64{
		// neo got ~5x slower — past any sane threshold.
		"fig4a/neo": {50 * ms, 50 * ms, 50 * ms, 60 * ms},
		// sparksee stayed put.
		"fig4a/sparksee": {20 * ms, 20 * ms, 20 * ms, 22 * ms},
		"new/neo":        {1 * ms},
	})

	r := Compare(old, cur, 20)
	if len(r.Deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2 shared series", r.Deltas)
	}
	byName := map[string]SeriesDelta{}
	for _, d := range r.Deltas {
		byName[d.Series] = d
	}
	neo := byName["fig4a/neo"]
	if !neo.Regressed {
		t.Errorf("fig4a/neo not flagged: %+v", neo)
	}
	if neo.P50Change < 2 { // 5x slower is a +400% p50 move
		t.Errorf("fig4a/neo p50 change = %v, want > 2", neo.P50Change)
	}
	if spark := byName["fig4a/sparksee"]; spark.Regressed {
		t.Errorf("fig4a/sparksee wrongly flagged: %+v", spark)
	}
	if len(r.OnlyOld) != 1 || r.OnlyOld[0] != "gone/neo" {
		t.Errorf("OnlyOld = %v", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0] != "new/neo" {
		t.Errorf("OnlyNew = %v", r.OnlyNew)
	}
	if got := r.Regressions(); len(got) != 1 || got[0].Series != "fig4a/neo" {
		t.Errorf("Regressions() = %+v", got)
	}

	// Warn-only: threshold 0 flags nothing even with the same movement.
	if reg := Compare(old, cur, 0).Regressions(); len(reg) != 0 {
		t.Errorf("threshold 0 flagged %+v", reg)
	}

	out := r.Format()
	for _, want := range []string{"fig4a/neo", "REGRESSED", "only in old snapshot: gone/neo", "only in new snapshot: new/neo"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestCompareFloorSuppressesNoiseSeries: a sub-floor series can swing
// past the threshold without gating (its delta is still reported), but
// the floor never shields a series whose baseline sits above it.
func TestCompareFloor(t *testing.T) {
	us, ms := int64(1e3), int64(1e6)
	old := fixtureSnapshot(t, map[string][]int64{
		"matrix/q5.2/neo/auto/w8": {80 * us, 90 * us, 100 * us},
		"matrix/q4.2/neo/nav/w1":  {90 * ms, 95 * ms, 100 * ms},
	})
	cur := fixtureSnapshot(t, map[string][]int64{
		"matrix/q5.2/neo/auto/w8": {700 * us, 800 * us, 900 * us}, // 8x, but µs-scale
		"matrix/q4.2/neo/nav/w1":  {700 * ms, 750 * ms, 800 * ms}, // 8x, ms-scale
	})

	r := CompareFloor(old, cur, 400, float64(2*ms))
	reg := r.Regressions()
	if len(reg) != 1 || reg[0].Series != "matrix/q4.2/neo/nav/w1" {
		t.Fatalf("Regressions() = %+v, want only the ms-scale series", reg)
	}
	if len(r.Deltas) != 2 {
		t.Fatalf("deltas = %+v, want both series reported", r.Deltas)
	}

	// Floor 0 is plain Compare: both gate.
	if reg := CompareFloor(old, cur, 400, 0).Regressions(); len(reg) != 2 {
		t.Errorf("floor 0 flagged %+v, want both", reg)
	}
}

func TestReadSnapshotRoundTrip(t *testing.T) {
	s := fixtureSnapshot(t, map[string][]int64{"table2/neo": {1e6, 2e6}})
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := got.Bench.Histograms["table2/neo"]
	if !ok || h.Count != 2 {
		t.Fatalf("round-trip lost the series: %+v", got.Bench)
	}

	// A wrong schema is rejected, not silently compared.
	s.Schema = "twigraph-bench/v0"
	if err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
