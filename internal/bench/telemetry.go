package bench

import (
	"os"
	"strconv"

	"twigraph/internal/load"
	"twigraph/internal/obs"
	"twigraph/internal/qstats"
	"twigraph/internal/telemetry"
)

// BuiltNeo returns the Neo4j-analog store if it has been built, nil
// otherwise. Unlike Neo() it never triggers a build and is safe to call
// from any goroutine — this is what the telemetry server scrapes while
// the bench goroutine is still importing.
func (e *Env) BuiltNeo() *load.NeoResult { return e.neoPub.Load() }

// BuiltSpark is BuiltNeo for the Sparksee-analog store.
func (e *Env) BuiltSpark() *load.SparkResult { return e.sparkPub.Load() }

// EnableTracing turns on span tracing and timeline capture for the
// session: engines built from now on start traced, and already-built
// engines are switched on in place.
func (e *Env) EnableTracing() {
	e.Trace = true
	if n := e.BuiltNeo(); n != nil {
		n.Store.DB().Tracer().SetEnabled(true)
		n.Store.DB().Trace().SetEnabled(true)
	}
	if s := e.BuiltSpark(); s != nil {
		s.Store.DB().Tracer().SetEnabled(true)
		s.Store.DB().Trace().SetEnabled(true)
	}
}

// Telemetry builds the session's telemetry server: the harness registry
// plus both engines' registries, tracers and health checks. Engine
// sources resolve lazily, so an engine built mid-session appears on
// /metrics from its next scrape; before that the scrape simply omits
// it.
func (e *Env) Telemetry() *telemetry.Server {
	srv := telemetry.NewServer()
	srv.AddRegistry("bench", e.Reg)
	srv.AddRegistryFunc("neo", func() *obs.Registry {
		if n := e.BuiltNeo(); n != nil {
			return n.Store.Obs()
		}
		return nil
	})
	srv.AddRegistryFunc("sparksee", func() *obs.Registry {
		if s := e.BuiltSpark(); s != nil {
			return s.Store.Obs()
		}
		return nil
	})
	srv.AddTracerFunc("neo", func() *obs.Tracer {
		if n := e.BuiltNeo(); n != nil {
			return n.Store.Tracer()
		}
		return nil
	})
	srv.AddTracerFunc("sparksee", func() *obs.Tracer {
		if s := e.BuiltSpark(); s != nil {
			return s.Store.Tracer()
		}
		return nil
	})
	srv.AddHealth("neo", func() error {
		if n := e.BuiltNeo(); n != nil {
			return n.Store.DB().Health()
		}
		return nil // not built yet is healthy, not degraded
	})
	srv.AddHealth("sparksee", func() error {
		if s := e.BuiltSpark(); s != nil {
			return s.Store.DB().Health()
		}
		return nil
	})
	srv.AddQueryStatsFunc("neo", func() *qstats.Stats {
		if n := e.BuiltNeo(); n != nil {
			return n.Store.DB().QueryStats()
		}
		return nil
	})
	srv.AddQueryStatsFunc("sparksee", func() *qstats.Stats {
		if s := e.BuiltSpark(); s != nil {
			return s.Store.DB().QueryStats()
		}
		return nil
	})
	srv.SetBuildInfo(map[string]string{
		"engine":  "neo,sparksee",
		"workers": strconv.Itoa(e.Workers),
		"users":   strconv.Itoa(e.Cfg.Users),
	})
	return srv
}

// TraceProcesses returns the built engines' trace buffers labelled for
// a merged Chrome-trace export.
func (e *Env) TraceProcesses() []obs.TraceProcess {
	var procs []obs.TraceProcess
	if n := e.BuiltNeo(); n != nil {
		procs = append(procs, obs.TraceProcess{Name: "neo", Buf: n.Store.DB().Trace()})
	}
	if s := e.BuiltSpark(); s != nil {
		procs = append(procs, obs.TraceProcess{Name: "sparksee", Buf: s.Store.DB().Trace()})
	}
	return procs
}

// WriteChromeTrace exports every engine's captured timeline as one
// Chrome trace-event JSON file loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
func (e *Env) WriteChromeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, e.TraceProcesses()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
