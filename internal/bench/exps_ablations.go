package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"twigraph/internal/gen"
	"twigraph/internal/graph"
	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/obs"
	"twigraph/internal/sparkdb"
	"twigraph/internal/twitter"
)

// medianDuration returns the median of ds (ds is sorted in place).
func medianDuration(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

// interleavedMedians times two variants in alternating rounds and
// returns each variant's median round time — robust against the cache
// and GC noise of neighbouring experiments in a full twibench run.
// Round times are recorded into ha and hb (nil skips recording).
func interleavedMedians(rounds int, ha, hb *obs.Histogram, a, b func() error) (time.Duration, time.Duration, error) {
	var as, bs []time.Duration
	for r := 0; r < rounds; r++ {
		da, err := timeInto(ha, a)
		if err != nil {
			return 0, 0, err
		}
		as = append(as, da)
		db, err := timeInto(hb, b)
		if err != nil {
			return 0, 0, err
		}
		bs = append(bs, db)
	}
	return medianDuration(as), medianDuration(bs), nil
}

// runPhrasings times the three Cypher phrasings of Q4.1 (§4 "a
// recommendation query can be written in three similar ways").
func runPhrasings(e *Env, w io.Writer) error {
	neoRes, err := e.Neo()
	if err != nil {
		return err
	}
	neo := neoRes.Store
	// Typical users, evenly spread over the id space: the paper's
	// phrasing comparison concerns ordinary sources, not hubs (hubs are
	// the fig4c story).
	var users []int64
	for i := 0; i < 20; i++ {
		users = append(users, int64(i*(e.Cfg.Users/20))+1)
	}
	t := newTable(w, "method", "description", "total_ms", "avg_ms")
	for _, m := range []struct{ key, desc string }{
		{"a", "[:follows*2..2] + NOT pattern"},
		{"b", "collect depth-1, check depth-2 against it"},
		{"c", "expand *1..2, remove depth-1 afterwards"},
	} {
		var total time.Duration
		for _, uid := range users {
			// One warm-up, one timed run per user: phrasing cost
			// dominates, stability comes from the 20-user sweep.
			if _, err := neo.RecommendFolloweesMethod(m.key, uid, 10); err != nil {
				return err
			}
			d, err := timeInto(e.Hist("phrasings/"+m.key), func() error {
				_, err := neo.RecommendFolloweesMethod(m.key, uid, 10)
				return err
			})
			if err != nil {
				return err
			}
			total += d
		}
		t.rowf(m.key, m.desc,
			fmt.Sprintf("%.2f", float64(total.Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(total.Microseconds())/float64(len(users))/1000))
	}
	fmt.Fprintln(w, "\nPaper finding: method (b) performed best; (c) failed to return in")
	fmt.Fprintln(w, "reasonable time. All three return identical results (tested).")
	return nil
}

// runPlanCache measures the recompilation cost parameterised queries
// avoid (§4: "a good speedup can be achieved by specifying parameters,
// because it allows Cypher to cache the execution plans").
// runPlanCache measures the recompilation cost parameterised queries
// avoid (§4: "a good speedup can be achieved by specifying parameters,
// because it allows Cypher to cache the execution plans").
func runPlanCache(e *Env, w io.Writer) error {
	neoRes, err := e.Neo()
	if err != nil {
		return err
	}
	neo := neoRes.Store
	engine := neo.Engine()
	// The parameterised point lookup is exactly where plan caching
	// matters most: execution is a single index seek plus one property
	// read, so recompilation dominates when the cache is off.
	const q = `MATCH (u:user {uid: $uid}) RETURN u.screen_name`
	p := map[string]graph.Value{"uid": graph.IntValue(int64(e.Cfg.Users / 2))}
	const itersPerRound = 200

	sweep := func(cacheOn bool) func() error {
		return func() error {
			engine.SetPlanCache(cacheOn)
			defer engine.SetPlanCache(true)
			for i := 0; i < itersPerRound; i++ {
				if _, err := engine.Query(q, p); err != nil {
					return err
				}
			}
			return nil
		}
	}
	// Warm pages and the plan once.
	if _, err := engine.Query(q, p); err != nil {
		return err
	}
	on, off, err := interleavedMedians(7,
		e.Hist("plancache/on"), e.Hist("plancache/off"), sweep(true), sweep(false))
	if err != nil {
		return err
	}
	hits, misses := engine.CacheStats()
	t := newTable(w, "plan cache", "median round (200 queries)", "per query")
	t.rowf("enabled (parameterised)", on, on/itersPerRound)
	t.rowf("disabled (re-plan each run)", off, off/itersPerRound)
	fmt.Fprintf(w, "\nSpeedup from caching: %.2fx (avg re-plan cost %v per query);\n",
		float64(off)/float64(on), (off-on)/itersPerRound)
	fmt.Fprintf(w, "session cache stats: %d hits / %d misses.\n", hits, misses)
	return nil
}

// runTopN measures the aggregate-operation overhead (§4: "removing
// ordering, deduplication and limiting the number of results returned
// are all factors that contribute to performance gains in Cypher",
// while Sparksee must always materialise and rank client-side).
func runTopN(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	outDeg, err := e.OutDegree()
	if err != nil {
		return err
	}
	users := e.sampleUsers(20, outDeg)

	sweep := func(f func(uid int64) error) func() error {
		return func() error {
			for _, uid := range users {
				if err := f(uid); err != nil {
					return err
				}
			}
			return nil
		}
	}

	engine := neo.Engine()
	full := `MATCH (a:user {uid: $uid})-[:follows]->(f:user)<-[:follows]-(x:user)
		WHERE x.uid <> $uid AND NOT (a)-[:follows]->(x)
		RETURN x.uid AS id, count(*) AS c ORDER BY c DESC, id LIMIT 10`
	bare := `MATCH (a:user {uid: $uid})-[:follows]->(f:user)<-[:follows]-(x:user)
		WHERE x.uid <> $uid AND NOT (a)-[:follows]->(x)
		RETURN x.uid AS id, count(*) AS c`
	runQ := func(q string) func(int64) error {
		return func(uid int64) error {
			_, err := engine.Query(q, map[string]graph.Value{"uid": graph.IntValue(uid)})
			return err
		}
	}
	// Warm sweep, then interleaved median rounds.
	if err := sweep(runQ(full))(); err != nil {
		return err
	}
	fullT, bareT, err := interleavedMedians(9,
		e.Hist("topn/full"), e.Hist("topn/bare"), sweep(runQ(full)), sweep(runQ(bare)))
	if err != nil {
		return err
	}
	sparkSweep := sweep(func(uid int64) error {
		_, err := spark.RecommendFollowersOfFollowees(uid, 10)
		return err
	})
	if err := sparkSweep(); err != nil { // warm
		return err
	}
	var sparkRounds []time.Duration
	for r := 0; r < 9; r++ {
		d, err := timeInto(e.Hist("topn/sparksee"), sparkSweep)
		if err != nil {
			return err
		}
		sparkRounds = append(sparkRounds, d)
	}
	sparkT := medianDuration(sparkRounds)
	t := newTable(w, "variant", "median round (20 queries)", "avg_ms")
	avg := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/float64(len(users))/1000)
	}
	t.rowf("neo: count + ORDER BY + LIMIT", fullT, avg(fullT))
	t.rowf("neo: count only (no order/limit)", bareT, avg(bareT))
	t.rowf("sparksee: always full sort client-side", sparkT, avg(sparkT))
	fmt.Fprintf(w, "\nOrdering/limiting overhead on the declarative engine: %.1f%%.\n",
		100*(float64(fullT)-float64(bareT))/float64(bareT))
	return nil
}

// runColdCache measures the cold-cache penalty (§4: "Neo4j takes a long
// time to warm up the caches for a new query ... as the degree of the
// source node increases, the time it takes to warm the cache
// dramatically increases").
func runColdCache(e *Env, w io.Writer) error {
	neoRes, err := e.Neo()
	if err != nil {
		return err
	}
	neo := neoRes.Store
	// Pick sources by the size of the neighbourhood the query actually
	// loads (the 2-step tweet set), which is what determines how much
	// of the graph must be faulted in: one small, one large.
	var lowUID, highUID int64 = 1, 1
	lowRows, highRows := 1<<30, -1
	for i := 0; i < 40; i++ {
		uid := int64(i*(e.Cfg.Users/40)) + 1
		rows, err := neo.TweetsOfFollowees(uid)
		if err != nil {
			return err
		}
		if len(rows) > highRows {
			highRows, highUID = len(rows), uid
		}
		if len(rows) > 0 && len(rows) < lowRows {
			lowRows, lowUID = len(rows), uid
		}
	}
	t := newTable(w, "2-step neighbourhood", "median cold first run", "warm avg (10 runs)", "cold/warm", "cold faults", "warm faults")
	for _, uid := range []int64{lowUID, highUID} {
		// Median of five cold first-runs (each behind a full cache
		// eviction) against the mean of ten warm runs. Counters reset
		// between the two phases so each fault count attributes to its
		// own phase, not to whatever ran before.
		neo.ResetCounters()
		var colds []time.Duration
		for r := 0; r < 5; r++ {
			if err := neo.DB().CoolCaches(); err != nil {
				return err
			}
			d, err := timeInto(e.Hist("coldcache/cold"), func() error {
				_, err := neo.TweetsOfFollowees(uid)
				return err
			})
			if err != nil {
				return err
			}
			colds = append(colds, d)
		}
		cold := medianDuration(colds)
		coldFaults := neo.DB().PageFaults()
		neo.ResetCounters()
		var warm time.Duration
		for i := 0; i < 10; i++ {
			d, err := timeInto(e.Hist("coldcache/warm"), func() error {
				_, err := neo.TweetsOfFollowees(uid)
				return err
			})
			if err != nil {
				return err
			}
			warm += d
		}
		warm /= 10
		warmFaults := neo.DB().PageFaults()
		ratio := "inf"
		if warm > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(cold)/float64(warm))
		}
		rows, err := neo.TweetsOfFollowees(uid)
		if err != nil {
			return err
		}
		t.rowf(fmt.Sprintf("%d tweets loaded", len(rows)), cold, warm, ratio, coldFaults, warmFaults)
	}
	fmt.Fprintln(w, "\nPaper shape: first runs pay page faults even for small neighbourhoods;")
	fmt.Fprintln(w, "the absolute warm-up cost grows with how much of the graph the source's")
	fmt.Fprintln(w, "neighbourhood spans.")
	return nil
}

// runNavVsTraversal compares raw navigation operations against the
// traversal classes on both engines (§4: traversal rewrites were
// slightly slower on Sparksee, slightly faster than Cypher on Neo4j).
func runNavVsTraversal(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	outDeg, err := e.OutDegree()
	if err != nil {
		return err
	}
	users := e.sampleUsers(20, outDeg)
	variants := []struct {
		key, name string
		run       func(uid int64) error
	}{
		{"neo-cypher", "neo: declarative (Cypher method b)", func(uid int64) error {
			_, err := neo.RecommendFollowees(uid, 10)
			return err
		}},
		{"neo-traversal", "neo: traversal framework", func(uid int64) error {
			_, err := neo.RecommendFolloweesTraversal(uid, 10)
			return err
		}},
		{"sparksee-nav", "sparksee: raw Neighbors calls", func(uid int64) error {
			_, err := spark.RecommendFollowees(uid, 10)
			return err
		}},
		{"sparksee-traversal", "sparksee: Traversal class", func(uid int64) error {
			_, err := spark.RecommendFolloweesTraversal(uid, 10)
			return err
		}},
	}
	t := newTable(w, "variant", "20 queries", "avg_ms")
	for _, v := range variants {
		for _, uid := range users { // warm-up
			if err := v.run(uid); err != nil {
				return err
			}
		}
		total, err := timeInto(e.Hist("navtrav/"+v.key), func() error {
			for _, uid := range users {
				if err := v.run(uid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.rowf(v.name, total, fmt.Sprintf("%.3f", float64(total.Microseconds())/float64(len(users))/1000))
	}
	return nil
}

// runDerived executes the §3.3 composite query on both engines.
func runDerived(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	t := newTable(w, "engine", "experts", "top expert uid", "distance", "elapsed_ms")
	for _, s := range []twitter.Store{neo, spark} {
		var experts []twitter.TopicExpert
		elapsed, err := timeInto(e.Hist("derived/"+s.Name()), func() error {
			var err error
			experts, err = twitter.TopicExperts(s, 1, "topic1", 10)
			return err
		})
		if err != nil {
			return err
		}
		top, dist := int64(0), 0
		if len(experts) > 0 {
			top, dist = experts[0].UID, experts[0].Distance
		}
		t.rowf(s.Name(), len(experts), top, dist, fmt.Sprintf("%.3f", float64(elapsed.Microseconds())/1000))
	}
	fmt.Fprintln(w, "\nSteps: co-occurring hashtags (Q3.2) -> most retweeted tweets -> posters")
	fmt.Fprintln(w, "-> ordered by follows-distance from the asking user (Q6.1). The paper")
	fmt.Fprintln(w, "could not run this (no retweets in the crawl); the generator provides them.")
	return nil
}

// runUpdates measures the update workload the paper lists as future
// work, on small fresh databases so the shared environment stays
// untouched.
func runUpdates(e *Env, w io.Writer) error {
	cfg := gen.Default()
	cfg.Users = 500
	cfg.Seed = e.Cfg.Seed + 1
	dir := filepath.Join(e.WorkDir, "updates")
	csvDir := filepath.Join(dir, "csv")
	if _, err := gen.Generate(cfg, csvDir); err != nil {
		return err
	}
	neoRes, err := load.BuildNeo(csvDir, filepath.Join(dir, "neo"), neodb.Config{CachePages: 1024}, 0)
	if err != nil {
		return err
	}
	defer neoRes.Store.Close()
	sparkRes, err := load.BuildSpark(csvDir, sparkdb.ScriptOptions{})
	if err != nil {
		return err
	}

	const updates = 500
	t := newTable(w, "engine", "mixed updates", "elapsed", "updates/sec")
	for _, s := range []twitter.UpdateStore{neoRes.Store, sparkRes.Store} {
		elapsed, err := timeInto(e.Hist("updates/"+s.Name()), func() error {
			for i := 0; i < updates; i++ {
				uid := int64(10_000 + i)
				if err := s.AddUser(uid, fmt.Sprintf("new%d", i)); err != nil {
					return err
				}
				if err := s.AddFollow(uid, int64(i%cfg.Users)+1); err != nil {
					return err
				}
				if err := s.AddTweet(uid, 100_000+int64(i), "fresh tweet #topic1",
					[]int64{int64(i%cfg.Users) + 1}, []string{"topic1"}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		rate := float64(3*updates) / elapsed.Seconds()
		t.rowf(s.Name(), 3*updates, elapsed, fmt.Sprintf("%.0f", rate))
	}
	fmt.Fprintln(w, "\nEach update batch: one user, one follow edge, one tweet with a mention")
	fmt.Fprintln(w, "and a hashtag. The paper noted neither system supported incremental")
	fmt.Fprintln(w, "loading in 2015; both engines here accept transactional updates.")
	return nil
}
