package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/sparkdb"
)

// runIngest measures the staged bulk-ingestion pipeline on both engines:
// each imports the generated dataset from scratch with a serial pipeline
// and with N parse/resolve workers, plus a WAL group-commit run for the
// Neo4j-analog. Because batches are applied in file order regardless of
// the worker count, every variant produces byte-identical stores — the
// speedup is pure pipeline overlap of CSV decoding and id resolution
// with record application.
//
// On a single-core runner GOMAXPROCS is 1, the parallel variant
// degenerates to the serial path and the speedup column reads ~1.00x;
// the figures are only meaningful on multi-core hardware.
func runIngest(e *Env, w io.Writer) error {
	csvDir, sum, err := e.Dataset()
	if err != nil {
		return err
	}
	par := e.Workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	totalRows := sum.TotalNodes() + sum.TotalEdges()

	neoRun := func(tag string, cfg neodb.Config) (*load.NeoResult, time.Duration, error) {
		dbDir := filepath.Join(e.WorkDir, "ingest-neo-"+tag)
		os.RemoveAll(dbDir)
		var res *load.NeoResult
		d, err := timeInto(e.Hist("ingest/neo-"+tag), func() error {
			var err error
			res, err = load.BuildNeo(csvDir, dbDir, cfg, e.Cfg.Users/4+1)
			return err
		})
		return res, d, err
	}
	sparkRun := func(tag string, workers int) (*sparkdb.DB, time.Duration, error) {
		scriptPath, err := e.SparkScript()
		if err != nil {
			return nil, 0, err
		}
		db := sparkdb.New(sparkdb.Config{})
		d, err := timeInto(e.Hist("ingest/sparksee-"+tag), func() error {
			_, err := db.RunScript(scriptPath, sparkdb.ScriptOptions{
				BatchRows: e.Cfg.Users/4 + 1,
				Workers:   workers,
				ImagePath: filepath.Join(e.WorkDir, "ingest-spark-"+tag+".img"),
				DataDir:   csvDir,
			}, nil)
			return err
		})
		return db, d, err
	}
	rate := func(rows int, d time.Duration) string {
		if d <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(rows)/d.Seconds())
	}

	neoSerial, dNeo1, err := neoRun("w1", neodb.Config{CachePages: 8192, ImportWorkers: 1})
	if err != nil {
		return err
	}
	neoSerial.Store.Close()
	neoPar, dNeoN, err := neoRun(fmt.Sprintf("w%d", par), neodb.Config{CachePages: 8192, ImportWorkers: par})
	if err != nil {
		return err
	}
	defer neoPar.Store.Close()
	neoGC, dNeoGC, err := neoRun("groupcommit", neodb.Config{CachePages: 8192, ImportWorkers: par, ImportGroupCommit: true})
	if err != nil {
		return err
	}
	commits := neoGC.Store.DB().Obs().Counter(neodb.CWALGroupCommits).Load()
	// The ingest stores are built ad hoc (not through Env.Neo/Spark), so
	// deposit a registry dump — import_parse/resolve/apply_nanos and
	// wal_group_commits live there — for the session snapshot. The
	// group-commit run carries both.
	e.RecordEngineSnapshot("neo", neoGC.Store.Obs().Snapshot())
	neoGC.Store.Close()
	_, dSpark1, err := sparkRun("w1", 1)
	if err != nil {
		return err
	}
	sparkPar, dSparkN, err := sparkRun(fmt.Sprintf("w%d", par), par)
	if err != nil {
		return err
	}
	e.RecordEngineSnapshot("sparksee", sparkPar.Obs().Snapshot())

	t := newTable(w, "engine", "pipeline", "rows/s", "total", "speedup")
	t.rowf("neo", "workers=1", rate(totalRows, dNeo1), dNeo1.Round(time.Millisecond), "1.00x")
	t.rowf("neo", fmt.Sprintf("workers=%d", par), rate(totalRows, dNeoN), dNeoN.Round(time.Millisecond),
		fmt.Sprintf("%.2fx", float64(dNeo1)/float64(dNeoN)))
	t.rowf("neo", fmt.Sprintf("workers=%d +group-commit", par), rate(totalRows, dNeoGC), dNeoGC.Round(time.Millisecond),
		fmt.Sprintf("%.2fx", float64(dNeo1)/float64(dNeoGC)))
	t.rowf("sparksee", "workers=1", rate(totalRows, dSpark1), dSpark1.Round(time.Millisecond), "1.00x")
	t.rowf("sparksee", fmt.Sprintf("workers=%d", par), rate(totalRows, dSparkN), dSparkN.Round(time.Millisecond),
		fmt.Sprintf("%.2fx", float64(dSpark1)/float64(dSparkN)))

	r := neoPar.Report
	fmt.Fprintf(w, "\nneo phase split at workers=%d: nodes %v | dense %v | edges %v | indexes %v\n",
		par, r.NodePhase, r.DensePhase, r.EdgePhase, r.IndexPhase)
	fmt.Fprintf(w, "group-commit run: %d WAL frames, one fsync each (crash recovers whole batches)\n", commits)
	fmt.Fprintf(w, "dataset: %d nodes + %d edges; stores are byte-identical across all variants\n",
		sum.TotalNodes(), sum.TotalEdges())
	fmt.Fprintln(w, "per-stage parse/resolve/apply histograms land in the engine registries")
	fmt.Fprintln(w, "(import_parse_nanos, import_resolve_nanos, import_apply_nanos) in -json snapshots")
	return nil
}
