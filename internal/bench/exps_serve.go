package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"twigraph/internal/driver"
	"twigraph/internal/faultconn"
	"twigraph/internal/serve"
)

// runServeExp measures the network serving layer end to end: the same
// Table 2 read workload issued through the wire protocol (framing,
// credit streaming, admission control) instead of in-process calls.
// Three phases:
//
//  1. clean — concurrent driver workers over both engines on a healthy
//     loopback network; the series' p50/p95/p999 are the serving
//     overhead on top of the embedded latencies the other experiments
//     measure.
//  2. faults — the same workload through a fault-injecting dialer
//     (resets, partial writes, corruption, stalls); the driver's
//     retries absorb the faults and the tail (p999) shows their cost.
//  3. overload — a burst against a deliberately tiny admission config;
//     the server sheds instead of queueing unboundedly.
//
// The serve and driver registries are folded into the session snapshot
// so the checked-in baseline gates the serving path alongside the
// engine series.
func runServeExp(e *Env, w io.Writer) error {
	neoRes, err := e.Neo()
	if err != nil {
		return err
	}
	sparkRes, err := e.Spark()
	if err != nil {
		return err
	}
	newEngines := func() []*serve.Engine {
		return []*serve.Engine{
			serve.NewNeoEngine(neoRes.Store.DB()),
			serve.NewSparkEngine(sparkRes.Store.DB()),
		}
	}

	type probe struct {
		query  string
		params func(i int) map[string]any
	}
	users := int64(e.Cfg.Users)
	uid := func(i, span int) int64 { return 1 + int64(i)%min64(int64(span), users) }
	probes := []probe{
		{"followees", func(i int) map[string]any { return map[string]any{"uid": uid(i, 200)} }},
		{"users_over", func(i int) map[string]any { return map[string]any{"threshold": int64(3 + i%5)} }},
		{"hashtags_of_followees", func(i int) map[string]any { return map[string]any{"uid": uid(i, 100)} }},
		{"co_mentioned", func(i int) map[string]any { return map[string]any{"uid": uid(i, 100), "n": int64(5)} }},
		{"recommend_followees", func(i int) map[string]any { return map[string]any{"uid": uid(i, 50), "n": int64(5)} }},
	}

	startServer := func(cfg serve.Config) (*serve.Server, string, func() error, error) {
		srv := serve.NewServer(cfg, newEngines()...)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", nil, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		stop := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				return err
			}
			return <-done
		}
		return srv, ln.Addr().String(), stop, nil
	}

	const workers, iters = 4, 30
	runLoad := func(cli *driver.Client, series string, engines []string) (calls, failures, rows int64, err error) {
		var c, f, r atomic.Int64
		hist := e.Hist(series)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					n := wk*iters + i
					p := probes[n%len(probes)]
					engine := engines[n%len(engines)]
					start := time.Now()
					res, qerr := cli.Query(context.Background(), engine, p.query, p.params(n))
					c.Add(1)
					if qerr != nil {
						f.Add(1)
						continue
					}
					hist.Observe(int64(time.Since(start)))
					r.Add(int64(len(res.Rows)))
				}
			}(wk)
		}
		wg.Wait()
		return c.Load(), f.Load(), r.Load(), nil
	}

	srv, addr, stop, err := startServer(serve.Config{})
	if err != nil {
		return err
	}

	table := newTable(w, "phase/series", "calls", "failures", "rows", "p50", "p95", "p999", "retries")
	row := func(series string, calls, failures, rows int64, cli *driver.Client) {
		h := e.Hist(series).Snapshot()
		snap := cli.Metrics().Snapshot()
		table.rowf(series, calls, failures, rows,
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P95).Round(time.Microsecond),
			time.Duration(h.P999).Round(time.Microsecond),
			snap.Counters["retries"])
	}

	// Phase 1: clean network, one series per engine.
	for _, engine := range []string{"neo", "sparksee"} {
		cli := driver.New(driver.Config{Addr: addr, PoolSize: workers, CallTimeout: 30 * time.Second})
		calls, failures, rows, _ := runLoad(cli, "serve/"+engine, []string{engine})
		row("serve/"+engine, calls, failures, rows, cli)
		cli.Close()
	}

	// Phase 2: same workload through injected network faults.
	faultCli := driver.New(driver.Config{
		Addr: addr, PoolSize: workers, CallTimeout: 30 * time.Second,
		MaxRetries: 30, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		Dial: faultconn.Dialer(faultconn.Config{
			Seed:             e.Cfg.Seed,
			ResetProb:        0.02,
			PartialWriteProb: 0.02,
			GarbageProb:      0.01,
			StallProb:        0.05,
			StallFor:         time.Millisecond,
		}),
	})
	calls, failures, rows, _ := runLoad(faultCli, "serve/faults", []string{"neo", "sparksee"})
	row("serve/faults", calls, failures, rows, faultCli)
	driverSnap := faultCli.Metrics().Snapshot()
	faultCli.Close()

	serveSnap := srv.Metrics().Snapshot()
	e.RecordEngineSnapshot("serve", serveSnap)
	e.RecordEngineSnapshot("driver", driverSnap)
	if err := stop(); err != nil {
		return err
	}

	// Wire-phase breakdown: where a served query's wall clock went,
	// from the server's per-phase histograms (docs/SERVING.md). queue_wait
	// covers arrival to admission, execute the engine call, first_record
	// admission to the first RECORD on the wire, stream first to last
	// RECORD, drain the post-stream window until the query finishes.
	fmt.Fprintf(w, "\nwire phase breakdown (all phases, both clean series + faults):\n")
	ptable := newTable(w, "phase", "count", "p50", "p95")
	for _, phase := range []string{"queue_wait", "execute", "first_record", "stream", "drain"} {
		h := serveSnap.Histograms[phase]
		ptable.rowf(phase, h.Count,
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P95).Round(time.Microsecond))
	}

	// Phase 3: overload burst against a tiny admission config; no
	// retries, so every shed surfaces as ErrOverloaded.
	osrv, oaddr, ostop, err := startServer(serve.Config{
		MaxConcurrent: 1, MaxQueued: 1, MaxQueueWait: time.Millisecond,
	})
	if err != nil {
		return err
	}
	ocli := driver.New(driver.Config{Addr: oaddr, PoolSize: 16, CallTimeout: 30 * time.Second, MaxRetries: -1})
	var shed, ok atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := ocli.Query(context.Background(), "neo", "influence_potential",
				map[string]any{"uid": uid(i, 50), "n": int64(10)})
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
			case err == nil:
				ok.Add(1)
			}
		}(i)
	}
	wg.Wait()
	ocli.Close()
	oStats := osrv.QueryStats().Snapshot()
	if err := ostop(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\noverload burst: 16 concurrent vs capacity 2 -> %d served, %d shed (typed ErrOverloaded)\n",
		ok.Load(), shed.Load())
	// The shed split lives in the server's per-statement registry too:
	// admission rejections are accounted against the statement that was
	// refused, not lost in an aggregate counter.
	for _, sn := range oStats {
		fmt.Fprintf(w, "  statement %-28s calls=%-4d shed=%d\n", sn.Query, sn.Calls, sn.Shed)
	}
	fmt.Fprintf(w, "fault phase: every transport fault retried on a fresh connection; results stay byte-identical to the embedded engines\n")
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
