package bench

import (
	"bytes"
	"strings"
	"testing"

	"twigraph/internal/gen"
)

// tinyEnv builds a small environment so every experiment finishes in
// test time.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	cfg := gen.Default()
	cfg.Users = 250
	cfg.Hashtags = 30
	cfg.MentionsPer = 0.9
	cfg.TagsPer = 0.7
	cfg.Retweets = true
	cfg.RetweetsPer = 0.3
	e := NewEnv(cfg, t.TempDir())
	t.Cleanup(func() { e.Close() })
	return e
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	e := tinyEnv(t)
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ex.Run(e, &buf); err != nil {
				t.Fatalf("%s: %v", ex.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", ex.ID)
			}
		})
	}
}

func TestLookupExperiment(t *testing.T) {
	ex, err := Lookup("fig4a")
	if err != nil || ex.ID != "fig4a" {
		t.Errorf("Lookup = %+v, %v", ex, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("ghost experiment found")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, ex := range All() {
		if seen[ex.ID] {
			t.Errorf("duplicate experiment id %s", ex.ID)
		}
		seen[ex.ID] = true
		if ex.Title == "" || ex.Run == nil {
			t.Errorf("experiment %s incomplete", ex.ID)
		}
	}
}

func TestTable2ReportsAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("builds both engines")
	}
	e := tinyEnv(t)
	var buf bytes.Buffer
	if err := runTable2(e, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "NO") {
		t.Errorf("engines disagree:\n%s", out)
	}
	for _, q := range []string{"Q1.1", "Q2.1", "Q3.1", "Q4.1", "Q5.1", "Q6.1"} {
		if !strings.Contains(out, q) {
			t.Errorf("missing %s in table 2 output", q)
		}
	}
}

func TestEnvSharedBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds engines")
	}
	e := tinyEnv(t)
	n1, err := e.Neo()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := e.Neo()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Error("Neo() rebuilt the engine")
	}
	s1, _ := e.Spark()
	s2, _ := e.Spark()
	if s1 != s2 {
		t.Error("Spark() rebuilt the engine")
	}
}

func TestSampleUsersCoversSpectrum(t *testing.T) {
	e := tinyEnv(t)
	deg, err := e.MentionDegree()
	if err != nil {
		t.Fatal(err)
	}
	users := e.sampleUsers(40, deg)
	if len(users) == 0 || len(users) > 40 {
		t.Fatalf("sampled %d users", len(users))
	}
	seen := map[int64]bool{}
	for _, u := range users {
		if seen[u] {
			t.Fatalf("duplicate sample %d", u)
		}
		seen[u] = true
		if u < 1 || u > int64(e.Cfg.Users) {
			t.Fatalf("sample %d out of range", u)
		}
	}
}
