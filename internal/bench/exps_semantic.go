package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"twigraph/internal/neodb"
	"twigraph/internal/twitter"
)

// runSemantic measures the paper's §5 future-work idea: a
// semantic-aware storage layout. The importer's default layout places
// each relationship type's records on contiguous pages (semantic
// partitioning); the interleaved variant scatters types across pages
// (the type-blind strategy the paper says the 2015 systems used). The
// same cold-cache traversal then costs more page faults on the blind
// layout.
func runSemantic(e *Env, w io.Writer) error {
	csvDir, _, err := e.Dataset()
	if err != nil {
		return err
	}

	build := func(name string, interleaved bool) (*twitter.NeoStore, error) {
		db, err := neodb.Open(filepath.Join(e.WorkDir, "semantic-"+name), neodb.Config{CachePages: 8192})
		if err != nil {
			return nil, err
		}
		imp := db.NewImporter(0, nil)
		imp.SetInterleaved(interleaved)
		nodes, edges := neodb.ImportDirLayout(csvDir)
		if _, err := imp.Run(nodes, edges); err != nil {
			db.Close()
			return nil, err
		}
		return twitter.NewNeoStore(db), nil
	}

	partitioned, err := build("partitioned", false)
	if err != nil {
		return err
	}
	defer partitioned.Close()
	blind, err := build("interleaved", true)
	if err != nil {
		return err
	}
	defer blind.Close()

	// Cold-cache traversal sweep: Q2.2 walks follows then posts chains;
	// with type-partitioned records each hop's page holds mostly
	// relevant records.
	users := make([]int64, 0, 30)
	for i := 0; i < 30; i++ {
		users = append(users, int64(i*(e.Cfg.Users/30))+1)
	}
	measure := func(key string, s *twitter.NeoStore) (time.Duration, uint64, error) {
		var rounds []time.Duration
		var faults uint64
		for r := 0; r < 5; r++ {
			if err := s.DB().CoolCaches(); err != nil {
				return 0, 0, err
			}
			faultsBefore := cacheFaults(s)
			d, err := timeInto(e.Hist("semantic/"+key), func() error {
				for _, uid := range users {
					if _, err := s.TweetsOfFollowees(uid); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
			rounds = append(rounds, d)
			faults = cacheFaults(s) - faultsBefore
		}
		return medianDuration(rounds), faults, nil
	}
	t := newTable(w, "layout", "median cold sweep (30 users)", "page faults")
	for _, v := range []struct {
		key, name string
		store     *twitter.NeoStore
	}{
		{"partitioned", "type-partitioned (semantic-aware)", partitioned},
		{"interleaved", "interleaved (type-blind)", blind},
	} {
		elapsed, faults, err := measure(v.key, v.store)
		if err != nil {
			return err
		}
		t.rowf(v.name, elapsed, faults)
	}
	fmt.Fprintln(w, "\nSame graph, same queries; only the physical placement of relationship")
	fmt.Fprintln(w, "records differs. Partitioning records by relationship type — knowing the")
	fmt.Fprintln(w, "queries traverse one type at a time — cuts cold-cache page faults (the")
	fmt.Fprintln(w, "I/O a spinning disk pays for); at in-memory benchmark scale the wall-time")
	fmt.Fprintln(w, "difference stays within noise, so the fault column is the signal. The")
	fmt.Fprintln(w, "stronger form of the same idea is the dense-node experiment, where the")
	fmt.Fprintln(w, "per-type partitioning is per node and the win is unambiguous.")
	return nil
}

func cacheFaults(s *twitter.NeoStore) uint64 {
	// The relationship store dominates traversal faults; node and
	// property stores are identical across layouts.
	return s.DB().PageFaults()
}
