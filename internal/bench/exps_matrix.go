package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"twigraph/internal/spmat"
	"twigraph/internal/twitter"
)

// matrixRuns is the per-configuration measured round count of the
// algebraic execution experiment (one warm-up round precedes them).
const matrixRuns = 7

// methodExecStore is a store whose execution backend and worker count
// can both be toggled; both engine stores satisfy it.
type methodExecStore interface {
	workered
	SetExecMethod(spmat.Method)
	ExecMethod() spmat.Method
}

// runMatrix measures the gated multi-hop workload under the three
// execution backends — navigational, algebraic (masked SpMV/SpGEMM
// kernels), and auto (density-gated per hop) — at Workers=1 and
// Workers=N on both engines. The sweeps run over hub users, whose
// dense frontiers are where the row-gather formulation pays; the even
// tail of the sample keeps the auto gate honest on sparse anchors.
// Latencies land in the harness registry as
// matrix/<query>/<engine>/<method>/w<K> histograms, which the CI
// regression gate diffs against the checked-in baseline.
func runMatrix(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	mentionDeg, err := e.MentionDegree()
	if err != nil {
		return err
	}
	outDeg, err := e.OutDegree()
	if err != nil {
		return err
	}
	hubsMention := e.sampleUsers(24, mentionDeg)
	hubsOut := e.sampleUsers(24, outDeg)
	type pair struct{ a, b int64 }
	var pairs []pair
	for i := 0; i < len(hubsOut)/2 && len(pairs) < 12; i++ {
		if a, b := hubsOut[i], hubsOut[len(hubsOut)-1-i]; a != b {
			pairs = append(pairs, pair{a, b})
		}
	}
	wN := e.Workers
	if wN <= 1 {
		wN = runtime.GOMAXPROCS(0)
	}
	if wN < 2 {
		wN = 2
	}

	type task struct {
		id  string
		run func(s twitter.Store) error
	}
	sweep := func(uids []int64, q func(s twitter.Store, uid int64) error) func(twitter.Store) error {
		return func(s twitter.Store) error {
			for _, uid := range uids {
				if err := q(s, uid); err != nil {
					return err
				}
			}
			return nil
		}
	}
	tasks := []task{
		{"q3.1", sweep(hubsMention, func(s twitter.Store, uid int64) error {
			_, err := s.CoMentionedUsers(uid, unbounded)
			return err
		})},
		{"q4.1", sweep(hubsOut, func(s twitter.Store, uid int64) error {
			_, err := s.RecommendFollowees(uid, unbounded)
			return err
		})},
		{"q4.2", sweep(hubsOut, func(s twitter.Store, uid int64) error {
			_, err := s.RecommendFollowersOfFollowees(uid, unbounded)
			return err
		})},
		{"q5.2", sweep(hubsMention, func(s twitter.Store, uid int64) error {
			_, err := s.PotentialInfluence(uid, unbounded)
			return err
		})},
		{"q6.1", func(s twitter.Store) error {
			for _, p := range pairs {
				if _, _, err := s.ShortestPathLength(p.a, p.b, 4); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	methods := []spmat.Method{spmat.MethodNav, spmat.MethodMatrix, spmat.MethodAuto}

	// measure times one sweep per method per round, methods interleaved
	// round-robin so scheduler and cache drift hits all three equally,
	// and reports each method's median round — robust against the GC
	// and page-cache outliers that dominate sub-millisecond sweeps.
	measure := func(s methodExecStore, t task, workers int) ([3]time.Duration, error) {
		var out [3]time.Duration
		prevW, prevM := s.Workers(), s.ExecMethod()
		s.SetWorkers(workers)
		defer func() {
			s.SetWorkers(prevW)
			s.SetExecMethod(prevM)
		}()
		var samples [3][]time.Duration
		for round := 0; round <= matrixRuns; round++ {
			for i, m := range methods {
				s.SetExecMethod(m)
				if round == 0 { // warm-up round per method
					if err := t.run(s); err != nil {
						return out, err
					}
					continue
				}
				h := e.Hist(fmt.Sprintf("matrix/%s/%s/%s/w%d", t.id, s.Name(), m, workers))
				d, err := timeInto(h, func() error { return t.run(s) })
				if err != nil {
					return out, err
				}
				samples[i] = append(samples[i], d)
			}
		}
		for i := range samples {
			sort.Slice(samples[i], func(a, b int) bool { return samples[i][a] < samples[i][b] })
			out[i] = samples[i][len(samples[i])/2]
		}
		return out, nil
	}

	fmt.Fprintf(w, "Gated multi-hop workload over hub users: nav vs matrix vs auto (median of %d interleaved sweeps):\n", matrixRuns)
	t := newTable(w, "query", "engine", "workers", "nav ms", "matrix ms", "auto ms", "mat/nav", "auto pen")
	for _, task := range tasks {
		for _, s := range []methodExecStore{neo, spark} {
			for _, workers := range []int{1, wN} {
				med, err := measure(s, task, workers)
				if err != nil {
					return err
				}
				nav, mat, auto := med[0], med[1], med[2]
				best := nav
				if mat < best {
					best = mat
				}
				t.rowf(task.id, s.Name(), fmt.Sprintf("w%d", workers),
					fmt.Sprintf("%.3f", float64(nav.Microseconds())/1000),
					fmt.Sprintf("%.3f", float64(mat.Microseconds())/1000),
					fmt.Sprintf("%.3f", float64(auto.Microseconds())/1000),
					fmt.Sprintf("%.2fx", float64(nav)/float64(mat)),
					fmt.Sprintf("%+.1f%%", (float64(auto)/float64(best)-1)*100))
			}
		}
	}
	fmt.Fprintln(w, "\nmat/nav is the algebraic kernels' speedup over the navigational paths;")
	fmt.Fprintln(w, "auto pen is the auto gate's overhead against the better forced mode.")
	fmt.Fprintln(w, "All three backends return byte-identical results (see the three-way")
	fmt.Fprintln(w, "differential tests); the gate's plan decisions land in the engines'")
	fmt.Fprintf(w, "%s/%s counters.\n", spmat.CNavHops, spmat.CMatrixHops)
	return nil
}
