package bench

import (
	"fmt"
	"io"
)

// Experiment is one reproducible unit: a table, a figure, or a §4
// ablation.
type Experiment struct {
	ID    string // e.g. "table1", "fig4a", "phrasings"
	Title string
	Run   func(e *Env, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: characteristics of the data set", runTable1},
		{"table2", "Table 2: query workload (rows returned per engine, equality check)", runTable2},
		{"fig2", "Figure 2: import times for nodes and edges using the Neo4j-analog", runFig2},
		{"fig3", "Figure 3: import times for nodes and edges using the Sparksee-analog", runFig3},
		{"fig4a", "Figure 4(a,b): Q3.1 co-occurrence, avg time vs rows returned", runFig4Q31},
		{"fig4c", "Figure 4(c,d): Q4.1 recommendation, avg time vs rows returned", runFig4Q41},
		{"fig4e", "Figure 4(e,f): Q5.2 potential influence, avg time vs mention degree", runFig4Q52},
		{"fig4g", "Figure 4(g,h): Q6.1 shortest path, avg time vs path length", runFig4Q61},
		{"phrasings", "Ablation A (§4): three Cypher phrasings of the recommendation query", runPhrasings},
		{"plancache", "Ablation B (§4): plan-cache speedup from parameterised queries", runPlanCache},
		{"topn", "Ablation C (§4): overhead of ordering/dedup/limit in top-n queries", runTopN},
		{"coldcache", "Ablation D (§4): cold vs warm page cache, first-run cost vs degree", runColdCache},
		{"navtrav", "Ablation E (§4): raw navigation vs traversal classes", runNavVsTraversal},
		{"materialize", "§3.2.2: import cost of materialising the neighbor index", runMaterialize},
		{"semantic", "§5 future work: semantic-aware (type-partitioned) record layout", runSemantic},
		{"densenodes", "§3.2.1: relationship groups — the payoff of the dense-node import step", runDenseNodes},
		{"derived", "§3.3: derived topic-experts query on both engines", runDerived},
		{"updates", "§5 future work: incremental update workload on both engines", runUpdates},
		{"parallel", "Parallel multi-hop execution: Workers=1 vs Workers=N speedup", runParallel},
		{"matrix", "Algebraic execution: navigational vs masked SpMV/SpGEMM kernels vs auto gate", runMatrix},
		{"ingest", "Pipelined bulk ingestion: serial vs N-worker import, WAL group commit", runIngest},
		{"serve", "Network serving layer: wire-protocol latency, fault-injected retries, overload shedding", runServeExp},
		{"scale", "Scale-factor sweep: streaming gen, ingest throughput, store bytes, container mix, query latency vs SF", runScale},
	}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, ex := range All() {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// RunAll executes every experiment, writing each report to w.
func RunAll(e *Env, w io.Writer) error {
	for _, ex := range All() {
		fmt.Fprintf(w, "\n=== %s — %s ===\n\n", ex.ID, ex.Title)
		if err := ex.Run(e, w); err != nil {
			return fmt.Errorf("%s: %w", ex.ID, err)
		}
	}
	return nil
}
