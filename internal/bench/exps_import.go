package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"twigraph/internal/sparkdb"
)

func runFig2(e *Env, w io.Writer) error {
	res, err := e.Neo()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "(a) node import series")
	t := newTable(w, "phase", "label", "rows", "elapsed_ms")
	for _, p := range res.Series {
		if p.Phase == "nodes" {
			t.rowf(p.Phase, p.Label, p.Count, p.Elapsed.Milliseconds())
		}
	}
	fmt.Fprintln(w, "\n(b) edge import series")
	t = newTable(w, "phase", "label", "rows", "elapsed_ms")
	for _, p := range res.Series {
		if p.Phase == "edges" {
			t.rowf(p.Phase, p.Label, p.Count, p.Elapsed.Milliseconds())
		}
	}
	r := res.Report
	fmt.Fprintf(w, `
Phases (paper: node+edge import, ~10 min intermediate dense-node step,
~8 min post-import index build, 45 min total at full scale):
  nodes      %v
  dense step %v
  edges      %v
  indexes    %v
  total      %v
`, r.NodePhase, r.DensePhase, r.EdgePhase, r.IndexPhase, r.Total)
	return nil
}

func runFig3(e *Env, w io.Writer) error {
	csvDir, sum, err := e.Dataset()
	if err != nil {
		return err
	}
	// A deliberately small cache makes the flush stalls the paper's
	// Figure 3 shows ("sharp jumps ... when the cache is full and has
	// to flush to disk") visible at this scale.
	db := sparkdb.New(sparkdb.Config{})
	var series []sparkdb.Progress
	opts := sparkdb.ScriptOptions{
		CacheSize: 96 << 10,
		BatchRows: sum.Tweets/8 + 1,
		ImagePath: filepath.Join(e.WorkDir, "fig3.img"),
		DataDir:   csvDir,
	}
	scriptPath, err := e.SparkScript()
	if err != nil {
		return err
	}
	rep, err := db.RunScript(scriptPath, opts, func(p sparkdb.Progress) {
		series = append(series, p)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "(a) node import series (three regions, one per node type / payload size)")
	t := newTable(w, "phase", "rows", "elapsed_ms", "flush")
	for _, p := range series {
		if strings.HasPrefix(p.Phase, "nodes:") {
			flag := ""
			if p.Flushed {
				flag = "FLUSH"
			}
			t.rowf(p.Phase, p.Rows, p.Elapsed.Milliseconds(), flag)
		}
	}
	fmt.Fprintln(w, "\n(b) edge import series (vertical line = end of follows, ~80% of edges)")
	t = newTable(w, "phase", "rows", "elapsed_ms", "flush")
	for _, p := range series {
		if strings.HasPrefix(p.Phase, "edges:") {
			flag := ""
			if p.Flushed {
				flag = "FLUSH"
			}
			t.rowf(p.Phase, p.Rows, p.Elapsed.Milliseconds(), flag)
		}
	}
	followsShare := float64(sum.Follows) / float64(sum.TotalEdges())
	fmt.Fprintf(w, "\nfollows share of edges: %.1f%% (paper: ~80%%); flush stalls: %d; total: %v\n",
		100*followsShare, rep.Flushes, rep.Duration)
	return nil
}

func runMaterialize(e *Env, w io.Writer) error {
	csvDir, _, err := e.Dataset()
	if err != nil {
		return err
	}
	scriptPath, err := e.SparkScript()
	if err != nil {
		return err
	}
	run := func(materialize bool) (time.Duration, error) {
		db := sparkdb.New(sparkdb.Config{})
		rep, err := db.RunScript(scriptPath, sparkdb.ScriptOptions{
			Materialize: materialize,
			ImagePath:   filepath.Join(e.WorkDir, fmt.Sprintf("mat-%v.img", materialize)),
			DataDir:     csvDir,
		}, nil)
		return rep.Duration, err
	}
	off, err := run(false)
	if err != nil {
		return err
	}
	on, err := run(true)
	if err != nil {
		return err
	}
	t := newTable(w, "materialize neighbors", "import time", "relative")
	t.rowf("off (paper's choice)", off, "1.00x")
	t.rowf("on (paper aborted at 8h)", on, fmt.Sprintf("%.2fx", float64(on)/float64(off)))
	fmt.Fprintln(w, "\nWith materialisation every edge maintains a direct neighbor index")
	fmt.Fprintln(w, "in addition to its link bitmaps, roughly doubling import write volume.")
	return nil
}
