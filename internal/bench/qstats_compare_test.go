package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"twigraph/internal/obs"
	"twigraph/internal/qstats"
)

// statsFixture builds a statement registry where each named statement
// was called len(latencies) times with the given durations.
func statsFixture(stmts map[string][]time.Duration) []qstats.StatSnapshot {
	st := qstats.NewStats(0)
	for text, lats := range stmts {
		fp := qstats.Compute(text)
		for _, d := range lats {
			st.Record(fp, d, 1, obs.StatusCompleted, qstats.Handle{})
		}
	}
	return st.Snapshot()
}

// TestSnapshotQueryStatsRoundTrip: a snapshot carrying query_stats
// survives the write → read cycle with statements intact, and the field
// is omitted (nil after read) when capture was off — old baselines stay
// readable.
func TestSnapshotQueryStatsRoundTrip(t *testing.T) {
	s := fixtureSnapshot(t, map[string][]int64{"fig4a/neo": {1e6}})
	s.QueryStats = map[string][]qstats.StatSnapshot{
		"neo": statsFixture(map[string][]time.Duration{
			"neo: Followees": {2 * time.Millisecond, 4 * time.Millisecond},
		}),
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	stmts := got.QueryStats["neo"]
	if len(stmts) != 1 || stmts[0].Calls != 2 || stmts[0].TotalNanos != int64(6*time.Millisecond) {
		t.Fatalf("query_stats round trip = %+v", got.QueryStats)
	}
	if stmts[0].Query != "neo: Followees" {
		t.Errorf("statement text = %q", stmts[0].Query)
	}

	// No capture → no field in the JSON, nil after read.
	plain := fixtureSnapshot(t, map[string][]int64{"fig4a/neo": {1e6}})
	if err := WriteSnapshot(path, plain); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if got.QueryStats != nil {
		t.Errorf("QueryStats = %+v, want nil", got.QueryStats)
	}
}

// TestCompareStatementRegression: a single query class regressing is
// flagged per fingerprint even when the aggregate series would pass —
// the point of -qstats baselines.
func TestCompareStatementRegression(t *testing.T) {
	old := fixtureSnapshot(t, nil)
	old.QueryStats = map[string][]qstats.StatSnapshot{
		"neo": statsFixture(map[string][]time.Duration{
			"neo: Followees":        {2 * time.Millisecond, 2 * time.Millisecond},
			"neo: CoMentionedUsers": {10 * time.Millisecond},
			"neo: GoneStatement":    {time.Millisecond},
		}),
		"sparksee": statsFixture(map[string][]time.Duration{
			"spark: Followees": {time.Millisecond},
		}),
	}
	cur := fixtureSnapshot(t, nil)
	cur.QueryStats = map[string][]qstats.StatSnapshot{
		"neo": statsFixture(map[string][]time.Duration{
			// Followees got 5x slower; CoMentionedUsers stayed put.
			"neo: Followees":        {10 * time.Millisecond, 10 * time.Millisecond},
			"neo: CoMentionedUsers": {10 * time.Millisecond},
			"neo: NewStatement":     {time.Millisecond},
		}),
		"sparksee": statsFixture(map[string][]time.Duration{
			"spark: Followees": {time.Millisecond},
		}),
	}

	r := Compare(old, cur, 20)
	if len(r.Statements) != 3 { // neo x2 shared + sparksee x1; gone/new dropped
		t.Fatalf("statements = %+v, want 3 shared", r.Statements)
	}
	reg := r.StatementRegressions()
	if len(reg) != 1 {
		t.Fatalf("statement regressions = %+v, want 1", reg)
	}
	if reg[0].Engine != "neo" || reg[0].Query != "neo: Followees" {
		t.Errorf("regressed statement = %+v", reg[0])
	}
	if reg[0].MeanChange < 3 { // 5x slower = +400%
		t.Errorf("mean change = %v, want > 3", reg[0].MeanChange)
	}
	if r.RegressionCount() != 1 {
		t.Errorf("RegressionCount = %d", r.RegressionCount())
	}

	out := r.Format()
	for _, want := range []string{"neo: Followees", "REGRESSED", "statements regressed past"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}

	// Warn-only threshold flags nothing.
	if reg := Compare(old, cur, 0).StatementRegressions(); len(reg) != 0 {
		t.Errorf("threshold 0 flagged %+v", reg)
	}
}
