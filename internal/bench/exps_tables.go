package bench

import (
	"fmt"
	"io"

	"twigraph/internal/core"
)

// paperTable1 holds the counts the paper reports so the scaled run can
// be compared ratio-by-ratio.
var paperTable1 = struct {
	users, tweets, hashtags        int64
	follows, posts, mentions, tags int64
	totalNodes, totalRels          int64
}{
	users: 24_789_792, tweets: 24_000_023, hashtags: 616_109,
	follows: 284_000_284, posts: 24_000_023, mentions: 11_100_547, tags: 7_137_992,
	totalNodes: 49_405_924, totalRels: 326_238_846,
}

func runTable1(e *Env, w io.Writer) error {
	_, sum, err := e.Dataset()
	if err != nil {
		return err
	}
	t := newTable(w, "Node", "Count", "Paper", "  ", "Relationship", "Count ", "Paper ")
	t.rowf("user", sum.Users, paperTable1.users, "", "follows", sum.Follows, paperTable1.follows)
	t.rowf("tweet", sum.Tweets, paperTable1.tweets, "", "posts", sum.Posts, paperTable1.posts)
	t.rowf("hashtag", sum.Hashtags, paperTable1.hashtags, "", "mentions", sum.Mentions, paperTable1.mentions)
	t.rowf("", "", "", "", "tags", sum.Tags, paperTable1.tags)
	if sum.Retweets > 0 {
		t.rowf("", "", "", "", "retweets", sum.Retweets, "(absent)")
	}
	t.rowf("Total", sum.TotalNodes(), paperTable1.totalNodes, "", "Total", sum.TotalEdges(), paperTable1.totalRels)

	fmt.Fprintf(w, "\nShape checks (paper ratio vs this run):\n")
	ratio := func(name string, paper, got float64) {
		fmt.Fprintf(w, "  %-22s paper %8.3f   this run %8.3f\n", name, paper, got)
	}
	ratio("follows per user", float64(paperTable1.follows)/float64(paperTable1.users),
		float64(sum.Follows)/float64(sum.Users))
	ratio("mentions per tweet", float64(paperTable1.mentions)/float64(paperTable1.tweets),
		float64(sum.Mentions)/float64(sum.Tweets))
	ratio("tags per tweet", float64(paperTable1.tags)/float64(paperTable1.tweets),
		float64(sum.Tags)/float64(sum.Tweets))
	return nil
}

func runTable2(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	deg, err := e.MentionDegree()
	if err != nil {
		return err
	}
	// A deterministic probe user: the most-mentioned account (lowest
	// uid on ties), so the influence rows are non-trivial.
	probe := int64(1)
	for uid := int64(1); uid <= int64(e.Cfg.Users); uid++ {
		if deg[uid] > deg[probe] {
			probe = uid
		}
	}
	// Pick a shortest-path target two hops out so Q6.1 is non-trivial.
	uid2 := probe%int64(e.Cfg.Users) + 7
	if f1, err := neo.Followees(probe); err == nil && len(f1) > 0 {
		if f2, err := neo.Followees(f1[len(f1)-1]); err == nil {
			for _, cand := range f2 {
				if cand != probe {
					uid2 = cand
					break
				}
			}
		}
	}
	p := core.Params{UID: probe, UID2: uid2, Tag: "topic1", Threshold: 10, TopN: 10, MaxHops: 3}

	t := newTable(w, "Query", "Category", "Starred", "neo rows", "sparksee rows", "agree")
	for _, spec := range core.Workload() {
		nRows, err := spec.Run(neo, p)
		if err != nil {
			return fmt.Errorf("%s on neo: %w", spec.ID, err)
		}
		sRows, err := spec.Run(spark, p)
		if err != nil {
			return fmt.Errorf("%s on sparksee: %w", spec.ID, err)
		}
		star := ""
		if spec.Starred {
			star = "*"
		}
		agree := "yes"
		if nRows != sRows {
			agree = "NO"
		}
		t.rowf(string(spec.ID), spec.Category, star, nRows, sRows, agree)
	}
	fmt.Fprintf(w, "\nProbe user: uid=%d (mentioned %d times); hashtag %q; threshold %d.\n",
		probe, deg[probe], p.Tag, p.Threshold)
	return nil
}
