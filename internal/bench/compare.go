package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// ReadSnapshot loads a snapshot written by WriteSnapshot, rejecting
// files from a different schema version.
func ReadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: %s: %w", path, err)
	}
	if s.Schema != SnapshotSchema {
		return s, fmt.Errorf("bench: %s: schema %q, want %q", path, s.Schema, SnapshotSchema)
	}
	return s, nil
}

// SeriesDelta is one bench series' latency movement between two
// snapshots. Changes are fractional: +0.25 means 25% slower.
type SeriesDelta struct {
	Series             string
	OldCount, NewCount uint64
	OldP50, NewP50     float64 // ns
	OldP95, NewP95     float64 // ns
	P50Change          float64
	P95Change          float64
	Regressed          bool
}

// StatementDelta is one query class's mean-latency movement between two
// snapshots, keyed "engine/fingerprint". It is the per-statement analog
// of SeriesDelta: where a harness series aggregates a whole experiment,
// a statement delta isolates one fingerprint, so -regress can point at
// the exact query shape that got slower.
type StatementDelta struct {
	Engine             string
	Fingerprint        string
	Query              string
	OldCalls, NewCalls uint64
	OldMean, NewMean   float64 // ns
	MeanChange         float64
	Regressed          bool
}

// CompareReport is the result of diffing two bench snapshots: per-series
// p50/p95 deltas for the series both snapshots measured, plus the
// series only one of them has (a renamed or removed experiment is worth
// seeing, not silently dropping). When both snapshots carry query_stats
// (twibench -qstats), Statements holds the per-fingerprint deltas.
type CompareReport struct {
	ThresholdPct float64
	Deltas       []SeriesDelta
	OnlyOld      []string
	OnlyNew      []string
	Statements   []StatementDelta
}

// Compare diffs the harness histogram series ("experiment/engine")
// shared by two snapshots. A series regresses when its p50 or p95 grew
// by more than thresholdPct percent; thresholdPct <= 0 marks nothing
// regressed (warn-only comparison).
func Compare(old, cur Snapshot, thresholdPct float64) CompareReport {
	return CompareFloor(old, cur, thresholdPct, 0)
}

// CompareFloor is Compare with a noise floor: a series whose baseline
// p50 sits under floorNanos still reports its delta but cannot trip
// the regression gate. Sub-millisecond series measured over a handful
// of rounds swing multiples run to run on a loaded machine — scheduler
// and page-cache noise, not code — so CI gates pair a percentage
// threshold with an absolute floor (twibench -floor).
func CompareFloor(old, cur Snapshot, thresholdPct, floorNanos float64) CompareReport {
	r := CompareReport{ThresholdPct: thresholdPct}
	for name, oh := range old.Bench.Histograms {
		nh, ok := cur.Bench.Histograms[name]
		if !ok {
			r.OnlyOld = append(r.OnlyOld, name)
			continue
		}
		if oh.Count == 0 || nh.Count == 0 {
			continue // nothing measured on one side; no latency to compare
		}
		d := SeriesDelta{
			Series:   name,
			OldCount: oh.Count, NewCount: nh.Count,
			OldP50: oh.P50, NewP50: nh.P50,
			OldP95: oh.P95, NewP95: nh.P95,
			P50Change: change(oh.P50, nh.P50),
			P95Change: change(oh.P95, nh.P95),
		}
		if thresholdPct > 0 && oh.P50 >= floorNanos {
			lim := thresholdPct / 100
			d.Regressed = d.P50Change > lim || d.P95Change > lim
		}
		r.Deltas = append(r.Deltas, d)
	}
	for name := range cur.Bench.Histograms {
		if _, ok := old.Bench.Histograms[name]; !ok {
			r.OnlyNew = append(r.OnlyNew, name)
		}
	}
	sort.Slice(r.Deltas, func(i, j int) bool { return r.Deltas[i].Series < r.Deltas[j].Series })
	sort.Strings(r.OnlyOld)
	sort.Strings(r.OnlyNew)
	r.Statements = compareStatements(old, cur, thresholdPct)
	return r
}

// compareStatements diffs the per-fingerprint statement registries of
// two snapshots, engine by engine. A statement appears only when both
// snapshots measured it — a fingerprint present on one side has no
// baseline (or no current run) to compare against.
func compareStatements(old, cur Snapshot, thresholdPct float64) []StatementDelta {
	var out []StatementDelta
	for engine, oldStmts := range old.QueryStats {
		curStmts, ok := cur.QueryStats[engine]
		if !ok {
			continue
		}
		curByFP := make(map[string]int, len(curStmts))
		for i, sn := range curStmts {
			curByFP[sn.Fingerprint] = i
		}
		for _, osn := range oldStmts {
			i, ok := curByFP[osn.Fingerprint]
			if !ok || osn.Calls == 0 || curStmts[i].Calls == 0 {
				continue
			}
			nsn := curStmts[i]
			d := StatementDelta{
				Engine:      engine,
				Fingerprint: osn.Fingerprint,
				Query:       nsn.Query,
				OldCalls:    osn.Calls, NewCalls: nsn.Calls,
				OldMean: osn.MeanNanos, NewMean: nsn.MeanNanos,
				MeanChange: change(osn.MeanNanos, nsn.MeanNanos),
			}
			if thresholdPct > 0 {
				d.Regressed = d.MeanChange > thresholdPct/100
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Engine != out[j].Engine {
			return out[i].Engine < out[j].Engine
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// change returns the fractional movement from old to new (0 when old is
// not positive — a zero baseline has no meaningful ratio).
func change(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new - old) / old
}

// Regressions returns the deltas flagged as regressed.
func (r CompareReport) Regressions() []SeriesDelta {
	var out []SeriesDelta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// StatementRegressions returns the statement deltas flagged as
// regressed.
func (r CompareReport) StatementRegressions() []StatementDelta {
	var out []StatementDelta
	for _, d := range r.Statements {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// RegressionCount is the total number of regressed series and
// statements — the -regress exit-status gate.
func (r CompareReport) RegressionCount() int {
	return len(r.Regressions()) + len(r.StatementRegressions())
}

// Format renders the report as an aligned text table, one series per
// row, regressions marked with "REGRESSED".
func (r CompareReport) Format() string {
	var b strings.Builder
	tw := newTable(&b, "series", "old p50", "new p50", "Δp50", "old p95", "new p95", "Δp95", "")
	for _, d := range r.Deltas {
		flag := ""
		if d.Regressed {
			flag = "REGRESSED"
		}
		tw.row(d.Series,
			fmtNS(d.OldP50), fmtNS(d.NewP50), fmtPct(d.P50Change),
			fmtNS(d.OldP95), fmtNS(d.NewP95), fmtPct(d.P95Change), flag)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(&b, "only in old snapshot: %s\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(&b, "only in new snapshot: %s\n", name)
	}
	if len(r.Statements) > 0 {
		fmt.Fprintln(&b)
		st := newTable(&b, "engine", "statement", "calls", "old mean", "new mean", "Δmean", "")
		for _, d := range r.Statements {
			flag := ""
			if d.Regressed {
				flag = "REGRESSED"
			}
			st.row(d.Engine, truncateQuery(d.Query, 48),
				fmt.Sprintf("%d→%d", d.OldCalls, d.NewCalls),
				fmtNS(d.OldMean), fmtNS(d.NewMean), fmtPct(d.MeanChange), flag)
		}
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(&b, "%d series regressed past %.1f%%\n", len(reg), r.ThresholdPct)
	}
	if reg := r.StatementRegressions(); len(reg) > 0 {
		fmt.Fprintf(&b, "%d statements regressed past %.1f%%\n", len(reg), r.ThresholdPct)
	}
	return b.String()
}

// truncateQuery bounds a statement's normalised text for table cells.
func truncateQuery(q string, max int) string {
	q = strings.ReplaceAll(q, "\n", " ")
	if len(q) <= max {
		return q
	}
	return q[:max-1] + "…"
}

func fmtNS(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtPct(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}
