package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"twigraph/internal/neodb"
	"twigraph/internal/twitter"
)

// runDenseNodes measures what the relationship groups buy: the same
// typed traversals from hub users on two otherwise identical
// record-store databases, one with the Neo4j dense threshold (50) and
// one with groups disabled (threshold beyond every degree). The
// import's "computing the dense nodes" step is what prepares these
// structures — the paper times it at roughly ten minutes at crawl
// scale.
func runDenseNodes(e *Env, w io.Writer) error {
	csvDir, _, err := e.Dataset()
	if err != nil {
		return err
	}
	build := func(name string, threshold int) (*twitter.NeoStore, time.Duration, error) {
		db, err := neodb.Open(filepath.Join(e.WorkDir, "dense-"+name), neodb.Config{
			CachePages: 8192, DenseThreshold: threshold,
		})
		if err != nil {
			return nil, 0, err
		}
		imp := db.NewImporter(0, nil)
		nodes, edges := neodb.ImportDirLayout(csvDir)
		rep, err := imp.Run(nodes, edges)
		if err != nil {
			db.Close()
			return nil, 0, err
		}
		return twitter.NewNeoStore(db), rep.DensePhase, nil
	}
	grouped, densePhase, err := build("on", neodb.DefaultDenseThreshold)
	if err != nil {
		return err
	}
	defer grouped.Close()
	flat, _, err := build("off", 1<<30)
	if err != nil {
		return err
	}
	defer flat.Close()

	// Hubs: the highest-degree users, where groups matter.
	outDeg, err := e.OutDegree()
	if err != nil {
		return err
	}
	mentionDeg, err := e.MentionDegree()
	if err != nil {
		return err
	}
	totalDeg := map[int64]int{}
	for uid, d := range outDeg {
		totalDeg[uid] += d
	}
	for uid, d := range mentionDeg {
		totalDeg[uid] += d
	}
	hubs := e.sampleUsers(10, totalDeg)[:5]

	measure := func(key string, s *twitter.NeoStore, cold bool) (time.Duration, uint64, uint64, error) {
		var rounds []time.Duration
		var hits, faults uint64
		for r := 0; r < 5; r++ {
			if cold {
				if err := s.DB().CoolCaches(); err != nil {
					return 0, 0, 0, err
				}
			} else {
				for _, uid := range hubs { // warm-up
					if _, err := s.Followees(uid); err != nil {
						return 0, 0, 0, err
					}
				}
			}
			hitsBefore := s.DB().RecordFetches()
			faultsBefore := s.DB().PageFaults()
			d, err := timeInto(e.Hist("densenodes/"+key), func() error {
				for k := 0; k < 20; k++ {
					for _, uid := range hubs {
						// Typed 1-hop from a hub that also has many
						// mention edges: exactly where groups skip
						// unrelated records.
						if _, err := s.Followees(uid); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				return 0, 0, 0, err
			}
			rounds = append(rounds, d)
			hits = s.DB().RecordFetches() - hitsBefore
			faults = s.DB().PageFaults() - faultsBefore
		}
		return medianDuration(rounds), hits, faults, nil
	}
	t := newTable(w, "engine", "cache", "median 100 hub traversals", "db hits", "page faults")
	for _, v := range []struct {
		key, name string
		store     *twitter.NeoStore
	}{
		{"grouped", "relationship groups (dense threshold 50)", grouped},
		{"flat", "single mixed chains (groups disabled)", flat},
	} {
		for _, cold := range []bool{true, false} {
			label := "warm"
			if cold {
				label = "cold"
			}
			elapsed, hits, faults, err := measure(v.key+"-"+label, v.store, cold)
			if err != nil {
				return err
			}
			t.rowf(v.name, label, elapsed, hits, faults)
		}
	}
	fmt.Fprintf(w, "\nDense-node preparation during import took %v (the paper's ~10 min\n", densePhase)
	fmt.Fprintln(w, "intermediate step at crawl scale). Typed traversals from hubs then skip")
	fmt.Fprintln(w, "every unrelated relationship record instead of scanning the mixed chain.")
	return nil
}
