package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"twigraph/internal/obs"
	"twigraph/internal/twitter"
)

// unbounded is the TopN used when reproducing the figures: the paper's
// x-axes count *all* rows the query returns, so the top-n trimming is
// lifted for measurement.
const unbounded = 1 << 30

// figRuns is the per-point run count; the paper averages 10 warm runs.
const figRuns = 10

// point is one measured (x, avg time) sample.
type point struct {
	x      int
	avg    time.Duration
	engine string
}

// measureAvg warms the query once, then averages figRuns executions.
// Each timed run is also recorded into h, so the series' full latency
// distribution (p50/p95/p99) lands in the harness registry.
func measureAvg(h *obs.Histogram, run func() (int, error)) (rows int, avg time.Duration, err error) {
	if rows, err = run(); err != nil { // warm-up
		return 0, 0, err
	}
	var total time.Duration
	for i := 0; i < figRuns; i++ {
		d, err := timeInto(h, func() error {
			var rerr error
			rows, rerr = run()
			return rerr
		})
		if err != nil {
			return 0, 0, err
		}
		total += d
	}
	return rows, total / figRuns, nil
}

// printSeries buckets points geometrically by x and prints the per-
// bucket average for both engines side by side.
func printSeries(w io.Writer, xLabel string, pts []point) {
	buckets := []int{0, 1, 3, 10, 30, 100, 150, 200, 300, 500, 1000, 3000, 10000, 100000}
	bucketOf := func(x int) int {
		for i := len(buckets) - 1; i >= 0; i-- {
			if x >= buckets[i] {
				return i
			}
		}
		return 0
	}
	type agg struct {
		total time.Duration
		n     int
	}
	perEngine := map[string]map[int]*agg{}
	for _, p := range pts {
		m, ok := perEngine[p.engine]
		if !ok {
			m = map[int]*agg{}
			perEngine[p.engine] = m
		}
		b := bucketOf(p.x)
		if m[b] == nil {
			m[b] = &agg{}
		}
		m[b].total += p.avg
		m[b].n++
	}
	engines := make([]string, 0, len(perEngine))
	for e := range perEngine {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	headers := []string{xLabel}
	for _, e := range engines {
		headers = append(headers, e+" avg_ms", e+" points")
	}
	t := newTable(w, headers...)
	for i, lo := range buckets {
		hi := "+"
		if i+1 < len(buckets) {
			hi = fmt.Sprintf("-%d", buckets[i+1]-1)
		}
		row := []any{fmt.Sprintf("%d%s", lo, hi)}
		any := false
		for _, e := range engines {
			if a := perEngine[e][i]; a != nil && a.n > 0 {
				row = append(row, fmt.Sprintf("%.3f", float64(a.total.Microseconds())/float64(a.n)/1000), a.n)
				any = true
			} else {
				row = append(row, "-", 0)
			}
		}
		if any {
			t.rowf(row...)
		}
	}
}

func runFig4Q31(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	deg, err := e.MentionDegree()
	if err != nil {
		return err
	}
	users := e.sampleUsers(80, deg)
	var pts []point
	for _, uid := range users {
		uid := uid
		for _, s := range []twitter.Store{neo, spark} {
			s := s
			rows, avg, err := measureAvg(e.Hist("fig4a/"+s.Name()), func() (int, error) {
				r, err := s.CoMentionedUsers(uid, unbounded)
				return len(r), err
			})
			if err != nil {
				return err
			}
			pts = append(pts, point{x: rows, avg: avg, engine: s.Name()})
		}
	}
	fmt.Fprintln(w, "Q3.1 (top-n users most mentioned with A), avg of 10 warm runs:")
	printSeries(w, "rows returned", pts)
	fmt.Fprintln(w, "\nPaper shape: increasing trend with rows returned; fluctuation at low row counts.")
	return nil
}

func runFig4Q41(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	outDeg, err := e.OutDegree()
	if err != nil {
		return err
	}
	users := e.sampleUsers(60, outDeg)
	var pts []point
	for _, uid := range users {
		uid := uid
		for _, s := range []twitter.Store{neo, spark} {
			s := s
			rows, avg, err := measureAvg(e.Hist("fig4c/"+s.Name()), func() (int, error) {
				r, err := s.RecommendFollowees(uid, unbounded)
				return len(r), err
			})
			if err != nil {
				return err
			}
			pts = append(pts, point{x: rows, avg: avg, engine: s.Name()})
		}
	}
	fmt.Fprintln(w, "Q4.1 (recommend 2-step followees), avg of 10 warm runs:")
	printSeries(w, "rows returned", pts)
	fmt.Fprintln(w, "\nPaper shape: 2-step expansion explodes on high out-degree sources; the")
	fmt.Fprintln(w, "record-store engine degrades with large intermediate results while the")
	fmt.Fprintln(w, "bitmap engine fluctuates less once the graph is in memory.")
	return nil
}

func runFig4Q52(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	deg, err := e.MentionDegree()
	if err != nil {
		return err
	}
	users := e.sampleUsers(80, deg)
	var pts []point
	for _, uid := range users {
		uid := uid
		for _, s := range []twitter.Store{neo, spark} {
			s := s
			_, avg, err := measureAvg(e.Hist("fig4e/"+s.Name()), func() (int, error) {
				r, err := s.PotentialInfluence(uid, unbounded)
				return len(r), err
			})
			if err != nil {
				return err
			}
			pts = append(pts, point{x: deg[uid], avg: avg, engine: s.Name()})
		}
	}
	fmt.Fprintln(w, "Q5.2 (potential influence), avg of 10 warm runs, x = mention degree:")
	printSeries(w, "mention degree", pts)
	fmt.Fprintln(w, "\nPaper shape: degrees stay low, matching the first portion of the Q3.1 plots.")
	return nil
}

func runFig4Q61(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	// Random-ish pairs spread over the id space; classify by path
	// length (1..3 hops) like the paper's x-axis.
	type sample struct {
		a, b int64
		len  int
	}
	var samples []sample
	seed := int64(7)
	n := int64(e.Cfg.Users)
	for i := int64(0); i < 600 && len(samples) < 120; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		a := (seed>>33)%n + 1
		if a < 0 {
			a = -a%n + 1
		}
		seed = seed*6364136223846793005 + 1442695040888963407
		b := (seed>>33)%n + 1
		if b < 0 {
			b = -b%n + 1
		}
		if a == b {
			continue
		}
		l, ok, err := neo.ShortestPathLength(a, b, 3)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		samples = append(samples, sample{a, b, l})
	}
	type agg struct {
		total time.Duration
		n     int
	}
	per := map[string]map[int]*agg{"neo": {}, "sparksee": {}}
	for _, sm := range samples {
		for _, s := range []twitter.Store{neo, spark} {
			s, sm := s, sm
			_, avg, err := measureAvg(e.Hist("fig4g/"+s.Name()), func() (int, error) {
				_, _, err := s.ShortestPathLength(sm.a, sm.b, 3)
				return 0, err
			})
			if err != nil {
				return err
			}
			if per[s.Name()][sm.len] == nil {
				per[s.Name()][sm.len] = &agg{}
			}
			per[s.Name()][sm.len].total += avg
			per[s.Name()][sm.len].n++
		}
	}
	fmt.Fprintln(w, "Q6.1 (shortest path, ≤3 hops), avg of 10 warm runs per pair:")
	t := newTable(w, "path length", "neo avg_ms", "sparksee avg_ms", "pairs")
	for l := 1; l <= 3; l++ {
		na, sa := per["neo"][l], per["sparksee"][l]
		if na == nil || na.n == 0 {
			continue
		}
		t.rowf(l,
			fmt.Sprintf("%.3f", float64(na.total.Microseconds())/float64(na.n)/1000),
			fmt.Sprintf("%.3f", float64(sa.total.Microseconds())/float64(sa.n)/1000),
			na.n)
	}
	fmt.Fprintln(w, "\nPaper shape: time grows with path length; the Neo4j-analog computes")
	fmt.Fprintln(w, "shortest paths more efficiently than the navigation-API engine.")
	return nil
}
