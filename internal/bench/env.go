// Package bench implements the experiment harness: one experiment per
// table and figure in the paper's evaluation, plus ablations for the
// design observations of its §4 discussion. Each experiment regenerates
// the corresponding table rows or figure series as plain text, so the
// shapes (who wins, trends against rows returned / degree / path
// length, import spikes) can be compared against the paper directly.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"twigraph/internal/gen"
	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/obs"
	"twigraph/internal/sparkdb"
	"twigraph/internal/spmat"
	"twigraph/internal/twitter"
)

// Env holds the shared state of an experiment session: the generated
// dataset and lazily built engine instances. Building each engine once
// and reusing it across experiments mirrors the paper's setup (one
// import, many query runs).
type Env struct {
	Cfg     gen.Config
	WorkDir string

	// Workers sets both the import pipeline's parse/resolve worker count
	// at build time and each store's query worker count after build:
	// 0 leaves the defaults (GOMAXPROCS), 1 forces the sequential paths,
	// N>1 pins the parallel paths to N workers/shards.
	Workers int

	// QueryTimeout bounds every store query by a deadline. Queries that
	// run past it abort with a context error and count into the engine's
	// queries_timed_out counter; 0 leaves queries unbounded.
	QueryTimeout time.Duration

	// Method selects each store's multi-hop execution backend after
	// build: MethodNav (the default) keeps the navigational/declarative
	// paths, MethodMatrix forces the spmat kernels, MethodAuto lets the
	// density gate decide per hop.
	Method spmat.Method

	// Reg collects the harness's own measurements: one latency histogram
	// per experiment/engine series ("fig4a/neo", "coldcache/cold", ...).
	// Engine-internal counters live in each engine's own registry.
	Reg *obs.Registry

	// Trace turns on each engine's tracer and trace buffer as it is
	// built, so a session can be exported with WriteChromeTrace. Set it
	// before the first Neo()/Spark() call (EnableTracing does both).
	Trace bool

	// QueryStats folds each engine's per-fingerprint statement registry
	// into Snapshot (twibench -qstats), so checked-in baselines can gate
	// on individual query classes, not just the aggregate series.
	QueryStats bool

	// SFMax caps the scale experiment's sweep: scale factors above it
	// are skipped. 0 applies the experiment's own default (0.3); 1 runs
	// the full grid. CI smoke runs pin it to the smallest factor.
	SFMax float64

	// neoPub/sparkPub publish the built stores for concurrent readers
	// (the telemetry server scrapes mid-bench from HTTP goroutines; the
	// sync.Once fields above only synchronise the building goroutines).
	neoPub   atomic.Pointer[load.NeoResult]
	sparkPub atomic.Pointer[load.SparkResult]

	genOnce sync.Once
	genErr  error
	csvDir  string
	summary gen.Summary

	neoOnce   sync.Once
	neoErr    error
	neoRes    *load.NeoResult
	sparkOnce sync.Once
	sparkErr  error
	sparkRes  *load.SparkResult

	degOnce    sync.Once
	mentionDeg map[int64]int // uid -> times mentioned
	outDeg     map[int64]int // uid -> followees

	scriptOnce sync.Once
	scriptErr  error
	scriptPath string

	extraMu      sync.Mutex
	extraEngines map[string]obs.Snapshot
}

// RecordEngineSnapshot deposits an engine registry dump taken from a
// store the experiment built itself (outside the session's shared
// Neo()/Spark() builds), so the session snapshot still carries its
// counters and histograms. The session-built engine of the same name
// wins if both exist.
func (e *Env) RecordEngineSnapshot(name string, s obs.Snapshot) {
	e.extraMu.Lock()
	defer e.extraMu.Unlock()
	if e.extraEngines == nil {
		e.extraEngines = map[string]obs.Snapshot{}
	}
	e.extraEngines[name] = s
}

// NewEnv creates an environment; workDir receives the CSVs and store
// files.
func NewEnv(cfg gen.Config, workDir string) *Env {
	return &Env{Cfg: cfg, WorkDir: workDir, Reg: obs.NewRegistry()}
}

// Hist returns the named harness latency histogram, creating it on
// first use.
func (e *Env) Hist(name string) *obs.Histogram { return e.Reg.Histogram(name) }

// timeInto runs f, records its wall time into h (nil h skips
// recording), and returns the elapsed duration. Every timed section of
// the harness funnels through here so each experiment series
// accumulates a full latency distribution, not just the printed
// average.
func timeInto(h *obs.Histogram, f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	d := time.Since(start)
	if err != nil {
		return 0, err
	}
	if h != nil {
		h.Observe(int64(d))
	}
	return d, nil
}

// DefaultConfig is the experiment-scale dataset: big enough for the
// figure trends to emerge, small enough for a laptop run.
func DefaultConfig() gen.Config {
	cfg := gen.Default()
	cfg.Users = 4000
	cfg.Hashtags = 200
	cfg.MentionsPer = 0.9
	cfg.TagsPer = 0.6
	cfg.Retweets = true
	cfg.RetweetsPer = 0.25
	return cfg
}

// Dataset generates (once) and returns the CSV directory and summary.
func (e *Env) Dataset() (string, gen.Summary, error) {
	e.genOnce.Do(func() {
		e.csvDir = filepath.Join(e.WorkDir, "csv")
		e.summary, e.genErr = gen.Generate(e.Cfg, e.csvDir)
	})
	return e.csvDir, e.summary, e.genErr
}

// Neo builds (once) and returns the Neo4j-analog store with its import
// artifacts.
func (e *Env) Neo() (*load.NeoResult, error) {
	if _, _, err := e.Dataset(); err != nil {
		return nil, err
	}
	e.neoOnce.Do(func() {
		e.neoRes, e.neoErr = load.BuildNeo(e.csvDir, filepath.Join(e.WorkDir, "neo"),
			neodb.Config{CachePages: 8192, ImportWorkers: e.Workers}, e.Cfg.Users/4+1)
		if e.neoErr == nil && e.Workers > 0 {
			e.neoRes.Store.SetWorkers(e.Workers)
		}
		if e.neoErr == nil && e.QueryTimeout > 0 {
			e.neoRes.Store.SetQueryTimeout(e.QueryTimeout)
		}
		if e.neoErr == nil && e.Method != spmat.MethodNav {
			e.neoRes.Store.SetExecMethod(e.Method)
		}
		if e.neoErr == nil {
			if e.Trace {
				e.neoRes.Store.DB().Tracer().SetEnabled(true)
				e.neoRes.Store.DB().Trace().SetEnabled(true)
			}
			e.neoPub.Store(e.neoRes)
		}
	})
	return e.neoRes, e.neoErr
}

// Spark builds (once) and returns the Sparksee-analog store with its
// import artifacts.
func (e *Env) Spark() (*load.SparkResult, error) {
	if _, _, err := e.Dataset(); err != nil {
		return nil, err
	}
	e.sparkOnce.Do(func() {
		e.sparkRes, e.sparkErr = load.BuildSpark(e.csvDir, sparkdb.ScriptOptions{
			BatchRows: e.Cfg.Users/4 + 1,
			Workers:   e.Workers,
		})
		if e.sparkErr == nil && e.Workers > 0 {
			e.sparkRes.Store.SetWorkers(e.Workers)
		}
		if e.sparkErr == nil && e.QueryTimeout > 0 {
			e.sparkRes.Store.SetQueryTimeout(e.QueryTimeout)
		}
		if e.sparkErr == nil && e.Method != spmat.MethodNav {
			e.sparkRes.Store.SetExecMethod(e.Method)
		}
		if e.sparkErr == nil {
			if e.Trace {
				e.sparkRes.Store.DB().Tracer().SetEnabled(true)
				e.sparkRes.Store.DB().Trace().SetEnabled(true)
			}
			e.sparkPub.Store(e.sparkRes)
		}
	})
	return e.sparkRes, e.sparkErr
}

// SparkScript writes (once) the sparkdb loader script for the generated
// dataset into the work dir — not the CSV dir, which stays pristine —
// and returns its path. Experiments that re-run the import with custom
// options use it with ScriptOptions.DataDir pointed at the CSV dir.
func (e *Env) SparkScript() (string, error) {
	_, sum, err := e.Dataset()
	if err != nil {
		return "", err
	}
	e.scriptOnce.Do(func() {
		e.scriptPath = filepath.Join(e.WorkDir, "twitter.sks")
		e.scriptErr = os.WriteFile(e.scriptPath, []byte(load.Script(sum.Retweets > 0)), 0o644)
	})
	return e.scriptPath, e.scriptErr
}

// Stores returns both engine stores.
func (e *Env) Stores() (*twitter.NeoStore, *twitter.SparkStore, error) {
	n, err := e.Neo()
	if err != nil {
		return nil, nil, err
	}
	s, err := e.Spark()
	if err != nil {
		return nil, nil, err
	}
	return n.Store, s.Store, nil
}

// Close releases engine resources.
func (e *Env) Close() error {
	if e.neoRes != nil {
		return e.neoRes.Store.Close()
	}
	return nil
}

// MentionDegree returns how often each user is mentioned (the x-axis of
// Figure 4(e,f)), computed engine-independently from the CSVs.
func (e *Env) MentionDegree() (map[int64]int, error) {
	if err := e.loadDegrees(); err != nil {
		return nil, err
	}
	return e.mentionDeg, nil
}

// OutDegree returns each user's followee count (drives the Figure 4(c)
// explosion analysis).
func (e *Env) OutDegree() (map[int64]int, error) {
	if err := e.loadDegrees(); err != nil {
		return nil, err
	}
	return e.outDeg, nil
}

func (e *Env) loadDegrees() error {
	if _, _, err := e.Dataset(); err != nil {
		return err
	}
	var err error
	e.degOnce.Do(func() {
		e.mentionDeg, err = countColumn(filepath.Join(e.csvDir, "mentions.csv"), 1)
		if err != nil {
			return
		}
		e.outDeg, err = countColumn(filepath.Join(e.csvDir, "follows.csv"), 0)
	})
	return err
}

func countColumn(path string, col int) (map[int64]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	r.FieldsPerRecord = -1
	counts := map[int64]int{}
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			continue
		}
		id, err := strconv.ParseInt(rec[col], 10, 64)
		if err != nil {
			return nil, err
		}
		counts[id]++
	}
}

// sampleUsers returns up to n distinct uids spread across the degree
// spectrum: the heaviest hubs plus evenly spaced users, so figure
// buckets cover both ends.
func (e *Env) sampleUsers(n int, byDegree map[int64]int) []int64 {
	type du struct {
		uid int64
		deg int
	}
	all := make([]du, 0, e.Cfg.Users)
	for uid := int64(1); uid <= int64(e.Cfg.Users); uid++ {
		all = append(all, du{uid, byDegree[uid]})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].deg > all[j].deg })
	out := make([]int64, 0, n)
	seen := map[int64]bool{}
	// Top decile of hubs first.
	for i := 0; i < len(all) && len(out) < n/2; i++ {
		if !seen[all[i].uid] {
			seen[all[i].uid] = true
			out = append(out, all[i].uid)
		}
	}
	// Then an even sweep.
	step := len(all)/(n-len(out)) + 1
	for i := 0; i < len(all) && len(out) < n; i += step {
		if !seen[all[i].uid] {
			seen[all[i].uid] = true
			out = append(out, all[i].uid)
		}
	}
	return out
}

// tableWriter renders fixed-width rows.
type tableWriter struct {
	w      io.Writer
	widths []int
}

func newTable(w io.Writer, headers ...string) *tableWriter {
	t := &tableWriter{w: w}
	for _, h := range headers {
		width := len(h)
		if width < 12 {
			width = 12
		}
		t.widths = append(t.widths, width)
	}
	t.row(headers...)
	sep := make([]string, len(headers))
	for i, wd := range t.widths {
		for j := 0; j < wd; j++ {
			sep[i] += "-"
		}
	}
	t.row(sep...)
	return t
}

func (t *tableWriter) row(cells ...string) {
	for i, c := range cells {
		if i < len(t.widths) {
			fmt.Fprintf(t.w, "%-*s  ", t.widths[i], c)
		} else {
			fmt.Fprintf(t.w, "%s  ", c)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *tableWriter) rowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprint(c)
	}
	t.row(out...)
}
