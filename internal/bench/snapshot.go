package bench

import (
	"encoding/json"
	"os"

	"twigraph/internal/obs"
	"twigraph/internal/qstats"
)

// SnapshotSchema versions the machine-readable snapshot layout.
const SnapshotSchema = "twigraph-bench/v1"

// Snapshot is the machine-readable result of a bench session: the
// harness's own latency histograms (per experiment/engine series, with
// p50/p95/p99) plus a full dump of each built engine's observability
// registry — page-cache, record-fetch, WAL, transaction and navigation
// counters. Snapshots from different commits diff cleanly, which is
// what makes them useful as checked-in regression baselines.
type Snapshot struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	Users      int    `json:"users"`
	Seed       int64  `json:"seed"`

	// Engines maps engine name ("neo", "sparksee") to its registry
	// dump. An engine absent from the map was never built during the
	// session (not all experiments touch both).
	Engines map[string]obs.Snapshot `json:"engines"`

	// Bench holds the harness histograms keyed "experiment/series",
	// e.g. "fig4a/neo" or "coldcache/cold".
	Bench obs.Snapshot `json:"bench"`

	// QueryStats maps engine name to its per-fingerprint statement
	// statistics, ordered by total time descending — the
	// pg_stat_statements view of the run. Populated when the session ran
	// with statement capture (twibench -qstats); lets -regress gate on
	// a single query class instead of only the aggregate series.
	QueryStats map[string][]qstats.StatSnapshot `json:"query_stats,omitempty"`
}

// Snapshot captures the current observability state of the session.
func (e *Env) Snapshot(experiment string) Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Experiment: experiment,
		Users:      e.Cfg.Users,
		Seed:       e.Cfg.Seed,
		Engines:    map[string]obs.Snapshot{},
		Bench:      e.Reg.Snapshot(),
	}
	e.extraMu.Lock()
	for name, dump := range e.extraEngines {
		s.Engines[name] = dump
	}
	e.extraMu.Unlock()
	if e.neoRes != nil && e.neoErr == nil {
		s.Engines[e.neoRes.Store.Name()] = e.neoRes.Store.Obs().Snapshot()
	}
	if e.sparkRes != nil && e.sparkErr == nil {
		s.Engines[e.sparkRes.Store.Name()] = e.sparkRes.Store.Obs().Snapshot()
	}
	if e.QueryStats {
		s.QueryStats = map[string][]qstats.StatSnapshot{}
		if e.neoRes != nil && e.neoErr == nil {
			s.QueryStats[e.neoRes.Store.Name()] = e.neoRes.Store.DB().QueryStats().Snapshot()
		}
		if e.sparkRes != nil && e.sparkErr == nil {
			s.QueryStats[e.sparkRes.Store.Name()] = e.sparkRes.Store.DB().QueryStats().Snapshot()
		}
	}
	return s
}

// WriteSnapshot marshals s as indented JSON to path.
func WriteSnapshot(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
