package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"twigraph/internal/twitter"
)

// parRuns is the per-configuration run count of the parallel scaling
// experiment; each configuration is warmed once first.
const parRuns = 5

// workered is a store whose multi-hop worker count can be toggled; both
// engine stores satisfy it.
type workered interface {
	twitter.Store
	SetWorkers(int)
	Workers() int
}

// runParallel measures the multi-hop workload at Workers=1 against
// Workers=N on both engines over hub users (the heaviest frontiers,
// where sharding pays), printing the per-query speedup. Latencies land
// in the harness registry as parallel/<query>/<engine>/w<K> histograms.
func runParallel(e *Env, w io.Writer) error {
	neo, spark, err := e.Stores()
	if err != nil {
		return err
	}
	mentionDeg, err := e.MentionDegree()
	if err != nil {
		return err
	}
	outDeg, err := e.OutDegree()
	if err != nil {
		return err
	}
	hubsMention := e.sampleUsers(24, mentionDeg)
	hubsOut := e.sampleUsers(24, outDeg)
	// Endpoint pairs for the path search: far-apart hubs keep the BFS
	// frontiers wide.
	type pair struct{ a, b int64 }
	var pairs []pair
	for i := 0; i < len(hubsOut)/2 && len(pairs) < 12; i++ {
		if a, b := hubsOut[i], hubsOut[len(hubsOut)-1-i]; a != b {
			pairs = append(pairs, pair{a, b})
		}
	}
	wN := e.Workers
	if wN <= 1 {
		wN = runtime.GOMAXPROCS(0)
	}
	if wN < 2 {
		wN = 2
	}

	type task struct {
		id  string
		run func(s twitter.Store) error
	}
	sweep := func(uids []int64, q func(s twitter.Store, uid int64) error) func(twitter.Store) error {
		return func(s twitter.Store) error {
			for _, uid := range uids {
				if err := q(s, uid); err != nil {
					return err
				}
			}
			return nil
		}
	}
	tasks := []task{
		{"q3.1", sweep(hubsMention, func(s twitter.Store, uid int64) error {
			_, err := s.CoMentionedUsers(uid, unbounded)
			return err
		})},
		{"q4.1", sweep(hubsOut, func(s twitter.Store, uid int64) error {
			_, err := s.RecommendFollowees(uid, unbounded)
			return err
		})},
		{"q4.2", sweep(hubsOut, func(s twitter.Store, uid int64) error {
			_, err := s.RecommendFollowersOfFollowees(uid, unbounded)
			return err
		})},
		{"q5.2", sweep(hubsMention, func(s twitter.Store, uid int64) error {
			_, err := s.PotentialInfluence(uid, unbounded)
			return err
		})},
		{"q6.1", func(s twitter.Store) error {
			for _, p := range pairs {
				if _, _, err := s.ShortestPathLength(p.a, p.b, 4); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	measure := func(s workered, t task, workers int) (time.Duration, error) {
		prev := s.Workers()
		s.SetWorkers(workers)
		defer s.SetWorkers(prev)
		if err := t.run(s); err != nil { // warm-up
			return 0, err
		}
		h := e.Hist(fmt.Sprintf("parallel/%s/%s/w%d", t.id, s.Name(), workers))
		var total time.Duration
		for i := 0; i < parRuns; i++ {
			d, err := timeInto(h, func() error { return t.run(s) })
			if err != nil {
				return 0, err
			}
			total += d
		}
		return total / parRuns, nil
	}

	fmt.Fprintf(w, "Multi-hop workload over hub users, Workers=1 vs Workers=%d (avg of %d sweeps):\n", wN, parRuns)
	t := newTable(w, "query", "engine", "w1 avg_ms", fmt.Sprintf("w%d avg_ms", wN), "speedup")
	for _, task := range tasks {
		for _, s := range []workered{neo, spark} {
			seq, err := measure(s, task, 1)
			if err != nil {
				return err
			}
			par, err := measure(s, task, wN)
			if err != nil {
				return err
			}
			speedup := float64(seq) / float64(par)
			t.rowf(task.id, s.Name(),
				fmt.Sprintf("%.3f", float64(seq.Microseconds())/1000),
				fmt.Sprintf("%.3f", float64(par.Microseconds())/1000),
				fmt.Sprintf("%.2fx", speedup))
		}
	}
	fmt.Fprintln(w, "\nWorkers=1 runs the original sequential paths (Cypher on the Neo4j-analog);")
	fmt.Fprintln(w, "Workers=N shards each query's first-hop frontier across the worker pool.")
	fmt.Fprintln(w, "Results are byte-identical across worker counts (see the determinism tests).")
	return nil
}
