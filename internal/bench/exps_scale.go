package bench

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"twigraph/internal/core"
	"twigraph/internal/gen"
	"twigraph/internal/load"
	"twigraph/internal/neodb"
	"twigraph/internal/sparkdb"
	"twigraph/internal/twitter"
)

// scaleFactors is the sweep grid: SF 1.0 is the 100k-user reference
// dataset (the paper's 24.8M-user graph scaled to commodity CI), each
// step roughly 3x the previous. Env.SFMax truncates the sweep; the
// default stops at 0.3 so `-exp all` stays inside a laptop budget, and
// `-sfmax 1` runs the full grid.
var scaleFactors = []float64{0.01, 0.03, 0.1, 0.3, 1.0}

// scaleRefUsers is the SF=1.0 user count.
const scaleRefUsers = 100_000

// scaleQueryReps is how many times each workload query runs per SF, so
// the per-SF histograms carry a distribution rather than one sample.
const scaleQueryReps = 3

// scaleConfig derives the generator config for one scale factor from
// the session seed: the user count scales linearly, the hashtag
// vocabulary with it (floored so tiny SFs still exercise Q3.2), and the
// per-tweet shape knobs stay fixed so edge counts scale with users.
func scaleConfig(seed int64, sf float64) gen.Config {
	cfg := gen.Default()
	cfg.Seed = seed
	cfg.Users = int(sf * scaleRefUsers)
	cfg.Hashtags = cfg.Users / 20
	if cfg.Hashtags < 50 {
		cfg.Hashtags = 50
	}
	cfg.MentionsPer = 0.9
	cfg.TagsPer = 0.6
	cfg.Retweets = true
	cfg.RetweetsPer = 0.25
	return cfg
}

// runScale sweeps the dataset scale factor and measures, per SF: the
// streaming generator's wall time, both engines' ingest throughput,
// the on-disk footprint (page store bytes, image bytes), the sparksee
// image's container mix after run compression, and the Table 2 query
// latencies. Each SF builds its own stores from scratch — the shared
// Env builds are one fixed-size dataset — and releases them before the
// next so peak memory stays one-SF-sized. Latency series land in the
// snapshot as "scale/sf<sf>/<engine>/<query>", which is what the CI
// gate diffs.
func runScale(e *Env, w io.Writer) error {
	maxSF := e.SFMax
	if maxSF <= 0 {
		maxSF = 0.3
	}
	type sfRow struct {
		sf               float64
		users            int
		rows             int
		genD             time.Duration
		neoD, sparkD     time.Duration
		storeB, imageB   int64
		stats            sparkdb.BitmapStats
		q                map[string]map[string]time.Duration // engine -> query -> median-ish sample
	}
	var rows []sfRow
	queryIDs := []string{}
	for _, spec := range core.Workload() {
		queryIDs = append(queryIDs, string(spec.ID))
	}

	for _, sf := range scaleFactors {
		if sf > maxSF {
			fmt.Fprintf(w, "(stopping at SF %g; run with -sfmax %g for the full sweep)\n\n", maxSF, scaleFactors[len(scaleFactors)-1])
			break
		}
		cfg := scaleConfig(e.Cfg.Seed, sf)
		tag := fmt.Sprintf("sf%g", sf)
		sfDir := filepath.Join(e.WorkDir, "scale-"+tag)
		os.RemoveAll(sfDir)
		csvDir := filepath.Join(sfDir, "csv")

		var sum gen.Summary
		genD, err := timeInto(e.Hist("scale/"+tag+"/gen"), func() error {
			var err error
			sum, err = gen.GenerateStream(cfg, csvDir)
			return err
		})
		if err != nil {
			return fmt.Errorf("scale %s: generate: %w", tag, err)
		}
		totalRows := sum.TotalNodes() + sum.TotalEdges()

		neoDir := filepath.Join(sfDir, "neo")
		var neoRes *load.NeoResult
		neoD, err := timeInto(e.Hist("scale/"+tag+"/neo/ingest"), func() error {
			var err error
			neoRes, err = load.BuildNeo(csvDir, neoDir,
				neodb.Config{CachePages: 8192, ImportWorkers: e.Workers, ImportSpillDir: neoDir}, cfg.Users/4+1)
			return err
		})
		if err != nil {
			return fmt.Errorf("scale %s: neo ingest: %w", tag, err)
		}

		imagePath := filepath.Join(sfDir, "sparksee.img")
		var sparkRes *load.SparkResult
		sparkD, err := timeInto(e.Hist("scale/"+tag+"/sparksee/ingest"), func() error {
			var err error
			sparkRes, err = load.BuildSpark(csvDir, sparkdb.ScriptOptions{
				BatchRows: cfg.Users/4 + 1,
				Workers:   e.Workers,
				ImagePath: imagePath,
			})
			return err
		})
		if err != nil {
			neoRes.Store.Close()
			return fmt.Errorf("scale %s: sparksee ingest: %w", tag, err)
		}

		row := sfRow{
			sf: sf, users: cfg.Users, rows: totalRows,
			genD: genD, neoD: neoD, sparkD: sparkD,
			storeB: treeBytes(neoDir),
			stats:  sparkRes.Store.DB().BitmapStats(),
			q:      map[string]map[string]time.Duration{},
		}
		if info, err := os.Stat(imagePath); err == nil {
			row.imageB = info.Size()
		}

		if err := scaleQueries(e, tag, cfg, csvDir, neoRes.Store, sparkRes.Store, &row.q); err != nil {
			neoRes.Store.Close()
			return fmt.Errorf("scale %s: queries: %w", tag, err)
		}

		// The last SF's registries represent the sweep in the session
		// snapshot (later SFs overwrite earlier ones — the biggest build
		// is the interesting one).
		e.RecordEngineSnapshot(neoRes.Store.Name(), neoRes.Store.Obs().Snapshot())
		e.RecordEngineSnapshot(sparkRes.Store.Name(), sparkRes.Store.Obs().Snapshot())
		neoRes.Store.Close()
		os.RemoveAll(sfDir)
		rows = append(rows, row)
	}

	rate := func(n int, d time.Duration) string {
		if d <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
	}
	t := newTable(w, "SF", "users", "rows", "gen", "neo rows/s", "spark rows/s", "neo bytes", "img bytes", "containers (arr/run/bit)")
	for _, r := range rows {
		t.rowf(fmt.Sprintf("%g", r.sf), r.users, r.rows, r.genD.Round(time.Millisecond),
			rate(r.rows, r.neoD), rate(r.rows, r.sparkD), r.storeB, r.imageB,
			fmt.Sprintf("%d (%d/%d/%d)", r.stats.Containers(), r.stats.Arrays, r.stats.Runs, r.stats.Bitsets))
	}

	fmt.Fprintf(w, "\nquery latency (one mid-rep sample per query; full distributions in the snapshot series):\n\n")
	qt := newTable(w, append([]string{"SF", "engine"}, queryIDs...)...)
	for _, r := range rows {
		for _, engine := range []string{"neo", "sparksee"} {
			cells := []any{fmt.Sprintf("%g", r.sf), engine}
			for _, q := range queryIDs {
				cells = append(cells, r.q[engine][q].Round(10*time.Microsecond))
			}
			qt.rowf(cells...)
		}
	}
	fmt.Fprintln(w, "\ndatasets come from the streaming generator (O(users) resident); each SF's")
	fmt.Fprintln(w, "stores are built fresh and released before the next, so peak memory tracks the")
	fmt.Fprintln(w, "largest single SF, not the sweep. Image bytes reflect run-container compression")
	fmt.Fprintln(w, "(v2 format); container mix shows how the adjacency bitmaps are encoded.")
	return nil
}

// scaleQueries runs the Table 2 workload on both freshly built stores,
// recording each rep into the per-SF/engine/query histogram and keeping
// the middle rep's duration for the printed table.
func scaleQueries(e *Env, tag string, cfg gen.Config, csvDir string, neo *twitter.NeoStore, spark *twitter.SparkStore, out *map[string]map[string]time.Duration) error {
	// Probe user: most-mentioned uid, computed engine-independently from
	// the CSVs (same anchoring rule as the Table 2 experiment).
	deg, err := countColumn(filepath.Join(csvDir, "mentions.csv"), 1)
	if err != nil {
		return err
	}
	probe := int64(1)
	for uid := int64(1); uid <= int64(cfg.Users); uid++ {
		if deg[uid] > deg[probe] {
			probe = uid
		}
	}
	uid2 := probe%int64(cfg.Users) + 7
	if f1, err := neo.Followees(probe); err == nil && len(f1) > 0 {
		if f2, err := neo.Followees(f1[len(f1)-1]); err == nil {
			for _, cand := range f2 {
				if cand != probe {
					uid2 = cand
					break
				}
			}
		}
	}
	p := core.Params{UID: probe, UID2: uid2, Tag: "topic1", Threshold: 10, TopN: 10, MaxHops: 3}

	stores := []struct {
		name string
		s    twitter.Store
	}{{"neo", neo}, {"sparksee", spark}}
	for _, st := range stores {
		perQuery := map[string]time.Duration{}
		for _, spec := range core.Workload() {
			h := e.Hist(fmt.Sprintf("scale/%s/%s/%s", tag, st.name, spec.ID))
			var mid time.Duration
			for rep := 0; rep < scaleQueryReps; rep++ {
				d, err := timeInto(h, func() error {
					_, err := spec.Run(st.s, p)
					return err
				})
				if err != nil {
					return fmt.Errorf("%s on %s: %w", spec.ID, st.name, err)
				}
				if rep == scaleQueryReps/2 {
					mid = d
				}
			}
			perQuery[string(spec.ID)] = mid
		}
		(*out)[st.name] = perQuery
	}
	return nil
}

// treeBytes sums the file sizes under dir — the on-disk footprint of
// the page-store engine's directory.
func treeBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
