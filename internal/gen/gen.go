// Package gen generates a deterministic synthetic Twittersphere in the
// shared CSV layout both engines' bulk loaders consume.
//
// It substitutes for the proprietary crawl of Li et al. (KDD'12) the
// paper uses — 24.8 M users, 284 M follows, 24 M tweets, 49.4 M nodes /
// 326 M edges in total. What the paper's experiments actually depend on
// is preserved:
//
//   - a heavy-tailed follower graph (preferential attachment), so some
//     users have orders of magnitude more followers than the median and
//     recommendation queries explode on high-degree sources;
//   - tweets carrying mentions and hashtags with Zipf popularity, so
//     co-occurrence and influence queries see skewed result sizes;
//   - the same node/edge *ratios* as Table 1 at a configurable scale
//     (defaults target a laptop; the knobs go up to paper scale).
//
// Generation is deterministic for a given Config (seeded PRNG), so
// every experiment is reproducible. Edge files never contain duplicate
// (src,dst) pairs and a tweet never mentions the same user or carries
// the same hashtag twice, keeping path-counting semantics identical
// across both engines.
package gen

import (
	"encoding/csv"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Config controls dataset scale and shape. The zero value is unusable;
// call Default for laptop-scale defaults.
type Config struct {
	Seed int64

	Users         int     // number of user nodes
	AvgFollowees  float64 // mean out-degree of the follows graph (paper: ~11.5)
	TweetsPerUser int     // paper retains 2 tweets per tweeting user
	TweetingRatio float64 // fraction of users with tweets (paper: 140k of 24.8M crawled for tweets, but all retained tweets belong to them)
	Hashtags      int     // hashtag vocabulary size
	MentionsPer   float64 // mean mentions per tweet (paper: 11.1M/24M ≈ 0.46)
	TagsPer       float64 // mean hashtags per tweet (paper: 7.1M/24M ≈ 0.30)
	Retweets      bool    // also generate retweets edges (the crawl lacked them)
	RetweetsPer   float64 // mean retweets edges per tweet when enabled
}

// Default returns a laptop-scale configuration preserving the paper's
// ratios: ~2k users, ~23k follows, 2 tweets per tweeting user.
func Default() Config {
	return Config{
		Seed:          42,
		Users:         2000,
		AvgFollowees:  11.5,
		TweetsPerUser: 2,
		TweetingRatio: 1.0,
		Hashtags:      120,
		MentionsPer:   0.46,
		TagsPer:       0.30,
	}
}

// Summary reports what was generated — the scaled counterpart of the
// paper's Table 1.
type Summary struct {
	Users    int `json:"users"`
	Tweets   int `json:"tweets"`
	Hashtags int `json:"hashtags"` // hashtags actually used
	Follows  int `json:"follows"`
	Posts    int `json:"posts"`
	Mentions int `json:"mentions"`
	Tags     int `json:"tags"`
	Retweets int `json:"retweets"`
}

// TotalNodes returns the node count across all types.
func (s Summary) TotalNodes() int { return s.Users + s.Tweets + s.Hashtags }

// TotalEdges returns the edge count across all types.
func (s Summary) TotalEdges() int {
	return s.Follows + s.Posts + s.Mentions + s.Tags + s.Retweets
}

// Generate writes the dataset CSVs into dir (created if needed) and
// returns the summary.
func Generate(cfg Config, dir string) (Summary, error) {
	if cfg.Users <= 0 {
		return Summary{}, fmt.Errorf("gen: Users must be positive")
	}
	if cfg.TweetingRatio <= 0 || cfg.TweetingRatio > 1 {
		cfg.TweetingRatio = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Summary{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sum Summary

	follows, inDeg, pool := followerGraph(rng, cfg)
	sum.Users = cfg.Users
	sum.Follows = len(follows)
	// Out-adjacency for mention locality: roughly half of all mentions
	// target someone the author follows (people talk to their own
	// community), which gives the Q5.1 "current influence" query a
	// non-trivial answer set, as in real microblog data.
	followees := make([][]int, cfg.Users+1)
	for _, e := range follows {
		followees[e[0]] = append(followees[e[0]], e[1])
	}

	// Users file with follower counts (used by Q1.1 selections).
	if err := writeCSV(filepath.Join(dir, "users.csv"), []string{"uid", "screen_name", "followers"},
		cfg.Users, func(i int, rec []string) {
			uid := i + 1
			rec[0] = strconv.Itoa(uid)
			rec[1] = "user" + strconv.Itoa(uid)
			rec[2] = strconv.Itoa(inDeg[i])
		}); err != nil {
		return sum, err
	}
	if err := writePairs(filepath.Join(dir, "follows.csv"), "src,dst", follows); err != nil {
		return sum, err
	}

	// Tweets, posts, mentions, tags.
	tweeters := int(float64(cfg.Users) * cfg.TweetingRatio)
	if tweeters < 1 {
		tweeters = 1
	}
	var tagZipf *rand.Zipf
	if cfg.Hashtags > 0 {
		tagZipf = rand.NewZipf(rng, 1.2, 3, uint64(cfg.Hashtags-1))
	}

	var posts, mentions, tags, retweets [][2]int
	usedTags := map[int]bool{}
	tweetsFile, err := newCSVFile(filepath.Join(dir, "tweets.csv"), "tid,text")
	if err != nil {
		return sum, err
	}
	defer tweetsFile.close()

	tid := 0
	for u := 1; u <= tweeters; u++ {
		for k := 0; k < cfg.TweetsPerUser; k++ {
			tid++
			text := "status " + strconv.Itoa(tid) + " from user" + strconv.Itoa(u)
			posts = append(posts, [2]int{u, tid})

			// Mentions: Poisson-ish via repeated Bernoulli halving.
			seenM := map[int]bool{}
			for m := sampleCount(rng, cfg.MentionsPer); m > 0 && cfg.Users > 1; m-- {
				var target int
				if fs := followees[u]; len(fs) > 0 && rng.Float64() < 0.5 {
					target = fs[rng.Intn(len(fs))]
				} else {
					target = pool[rng.Intn(len(pool))] + 1
				}
				if target == u || seenM[target] {
					continue
				}
				seenM[target] = true
				mentions = append(mentions, [2]int{tid, target})
				text += " @user" + strconv.Itoa(target)
			}
			// Hashtags.
			seenT := map[int]bool{}
			for h := sampleCount(rng, cfg.TagsPer); h > 0 && cfg.Hashtags > 0; h-- {
				tag := 1 + int(tagZipf.Uint64())
				if seenT[tag] {
					continue
				}
				seenT[tag] = true
				usedTags[tag] = true
				tags = append(tags, [2]int{tid, tag})
				text += " #topic" + strconv.Itoa(tag)
			}
			if err := tweetsFile.write([]string{strconv.Itoa(tid), text}); err != nil {
				return sum, err
			}
		}
	}
	sum.Tweets = tid
	sum.Posts = len(posts)
	sum.Mentions = len(mentions)
	sum.Tags = len(tags)

	// Retweets: optional, tweet -> earlier tweet.
	if cfg.Retweets && tid > 1 {
		seen := map[[2]int]bool{}
		for t := 2; t <= tid; t++ {
			for r := sampleCount(rng, cfg.RetweetsPer); r > 0; r-- {
				orig := 1 + rng.Intn(t-1)
				p := [2]int{t, orig}
				if seen[p] {
					continue
				}
				seen[p] = true
				retweets = append(retweets, p)
			}
		}
		sum.Retweets = len(retweets)
		if err := writePairs(filepath.Join(dir, "retweets.csv"), "src,dst", retweets); err != nil {
			return sum, err
		}
	}

	// Hashtag vocabulary file (only used tags become nodes).
	var tagList []int
	for t := range usedTags {
		tagList = append(tagList, t)
	}
	sort.Ints(tagList)
	sum.Hashtags = len(tagList)
	if err := writeCSV(filepath.Join(dir, "hashtags.csv"), []string{"hid", "tag"},
		len(tagList), func(i int, rec []string) {
			rec[0] = strconv.Itoa(tagList[i])
			rec[1] = "topic" + strconv.Itoa(tagList[i])
		}); err != nil {
		return sum, err
	}

	if err := writePairs(filepath.Join(dir, "posts.csv"), "uid,tid", posts); err != nil {
		return sum, err
	}
	if err := writePairs(filepath.Join(dir, "mentions.csv"), "tid,uid", mentions); err != nil {
		return sum, err
	}
	if err := writePairs(filepath.Join(dir, "tags.csv"), "tid,hid", tags); err != nil {
		return sum, err
	}
	return sum, nil
}

// followerGraph builds a preferential-attachment directed graph:
// each user follows ~AvgFollowees others, favouring users that already
// have followers. Returns the edge list, per-user in-degrees, and the
// attachment pool (a follower-count-weighted sample space reused for
// mention popularity: the most-followed accounts are also the
// most-mentioned, as on real microblogs).
func followerGraph(rng *rand.Rand, cfg Config) ([][2]int, []int, []int) {
	n := cfg.Users
	inDeg := make([]int, n)
	var edges [][2]int
	// Attachment pool: user u appears once, plus once per follower,
	// making popular users proportionally likelier targets.
	pool := make([]int, 0, n*4)
	for u := 0; u < n; u++ {
		pool = append(pool, u)
	}
	seen := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		k := sampleCount(rng, cfg.AvgFollowees)
		for tries := 0; k > 0 && tries < 20*int(cfg.AvgFollowees+1); tries++ {
			t := pool[rng.Intn(len(pool))]
			if t == u {
				continue
			}
			e := [2]int{u, t}
			if seen[e] {
				continue
			}
			seen[e] = true
			edges = append(edges, [2]int{u + 1, t + 1})
			inDeg[t]++
			// Slightly superlinear attachment: two pool entries per
			// follower gained, which produces the pronounced hubs
			// real follower graphs (and the paper's crawl) show.
			pool = append(pool, t, t)
			k--
		}
	}
	return edges, inDeg, pool
}

// sampleCount draws a non-negative integer with the given mean using a
// geometric-ish scheme: floor(mean) guaranteed attempts plus a Bernoulli
// for the fraction, then a heavy-ish tail.
func sampleCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	k := int(mean)
	if rng.Float64() < mean-float64(k) {
		k++
	}
	// Occasional burst (long tail).
	for rng.Float64() < 0.1 && k > 0 {
		k++
	}
	return k
}

// ---------- CSV plumbing ----------

type csvFile struct {
	f *os.File
	w *csv.Writer
}

func newCSVFile(path, header string) (*csvFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := csv.NewWriter(f)
	if header != "" {
		if _, err := f.WriteString(header + "\n"); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &csvFile{f: f, w: w}, nil
}

func (c *csvFile) write(rec []string) error { return c.w.Write(rec) }

func (c *csvFile) close() error {
	c.w.Flush()
	if err := c.w.Error(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

func writeCSV(path string, header []string, rows int, fill func(i int, rec []string)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < rows; i++ {
		fill(i, rec)
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writePairs(path, header string, pairs [][2]int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(header + "\n"); err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, 0, 32)
	for _, p := range pairs {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(p[0]), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p[1]), 10)
		buf = append(buf, '\n')
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
