package gen

import "testing"

func streamFixture(t *testing.T) (*Stream, Summary) {
	t.Helper()
	cfg := Default()
	cfg.Users = 100
	sum, err := Generate(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewStream(cfg, sum), sum
}

func TestStreamDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Users = 100
	sum, err := Generate(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := NewStream(cfg, sum).Take(200)
	b := NewStream(cfg, sum).Take(200)
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].UID != b[i].UID || a[i].TID != b[i].TID {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamEventMixAndIDs(t *testing.T) {
	s, sum := streamFixture(t)
	counts := map[EventKind]int{}
	seenUID := map[int64]bool{}
	seenTID := map[int64]bool{}
	for _, ev := range s.Take(2000) {
		counts[ev.Kind]++
		switch ev.Kind {
		case EventNewUser:
			if ev.UID <= int64(sum.Users) {
				t.Fatalf("new user id %d collides with dataset", ev.UID)
			}
			if seenUID[ev.UID] {
				t.Fatalf("duplicate new uid %d", ev.UID)
			}
			seenUID[ev.UID] = true
			if ev.ScreenName == "" {
				t.Fatal("new user without screen name")
			}
		case EventNewFollow:
			if ev.UID == ev.TargetUID {
				t.Fatal("self-follow emitted")
			}
		case EventNewTweet:
			if ev.TID <= int64(sum.Tweets) {
				t.Fatalf("new tweet id %d collides with dataset", ev.TID)
			}
			if seenTID[ev.TID] {
				t.Fatalf("duplicate tid %d", ev.TID)
			}
			seenTID[ev.TID] = true
			if ev.Text == "" {
				t.Fatal("tweet without text")
			}
			// Mentions unique and never self.
			seen := map[int64]bool{}
			for _, m := range ev.Mentions {
				if m == ev.UID || seen[m] {
					t.Fatalf("bad mention list %v for uid %d", ev.Mentions, ev.UID)
				}
				seen[m] = true
			}
		}
	}
	// Tweets dominate, follows common, signups rare but present.
	if counts[EventNewTweet] <= counts[EventNewFollow] || counts[EventNewFollow] <= counts[EventNewUser] {
		t.Errorf("event mix off: %v", counts)
	}
	if counts[EventNewUser] == 0 {
		t.Error("no signups in 2000 events")
	}
}

func TestStreamEventKindString(t *testing.T) {
	if EventNewUser.String() != "new-user" || EventNewFollow.String() != "new-follow" ||
		EventNewTweet.String() != "new-tweet" || EventKind(9).String() != "event(9)" {
		t.Error("EventKind.String wrong")
	}
}
