package gen

import (
	"fmt"
	"math/rand"
)

// This file implements the paper's §5 future work: "investigate how the
// graph could be generated on-the-fly with new incoming users, tweets
// and follow relationships ... simulate the true real-time nature of
// microblogs. With this setting, it would be possible to test for the
// ability of systems to handle update workloads."
//
// Stream produces an endless, deterministic sequence of events against
// an existing dataset; the update benchmarks apply them through the
// engines' transactional write paths.

// EventKind discriminates stream events.
type EventKind uint8

// Stream event kinds.
const (
	EventNewUser EventKind = iota
	EventNewFollow
	EventNewTweet
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventNewUser:
		return "new-user"
	case EventNewFollow:
		return "new-follow"
	case EventNewTweet:
		return "new-tweet"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one real-time update: a new user, a new follow edge, or a
// new tweet carrying mentions and hashtags.
type Event struct {
	Kind EventKind

	UID        int64 // acting user (all kinds)
	ScreenName string

	TargetUID int64 // new-follow target

	TID      int64 // new-tweet id
	Text     string
	Mentions []int64
	Tags     []string
}

// Stream generates events continuing an existing dataset: it knows the
// current user and tweet id high-water marks and keeps the same
// popularity skews as the static generator (new users follow
// preferentially, mentions favour the well-followed).
type Stream struct {
	rng      *rand.Rand
	nextUID  int64
	nextTID  int64
	cfg      Config
	pool     []int64 // follower-weighted target pool, as in followerGraph
	hashtags int
}

// NewStream creates a stream continuing after a generated dataset. The
// summary provides the id high-water marks; cfg controls event shape
// (the same knobs as static generation).
func NewStream(cfg Config, sum Summary) *Stream {
	s := &Stream{
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		nextUID:  int64(sum.Users) + 1,
		nextTID:  int64(sum.Tweets) + 1,
		cfg:      cfg,
		hashtags: cfg.Hashtags,
	}
	// Seed the preference pool with every existing user once; follower
	// weight accrues as the stream emits follows.
	s.pool = make([]int64, 0, sum.Users*2)
	for uid := int64(1); uid <= int64(sum.Users); uid++ {
		s.pool = append(s.pool, uid)
	}
	return s
}

// Next returns the next event. The mix approximates a live feed: most
// events are tweets, follows are common, fresh signups are rare.
func (s *Stream) Next() Event {
	switch r := s.rng.Float64(); {
	case r < 0.05:
		return s.newUser()
	case r < 0.35:
		return s.newFollow()
	default:
		return s.newTweet()
	}
}

// Take returns the next n events.
func (s *Stream) Take(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func (s *Stream) newUser() Event {
	uid := s.nextUID
	s.nextUID++
	s.pool = append(s.pool, uid)
	return Event{
		Kind:       EventNewUser,
		UID:        uid,
		ScreenName: fmt.Sprintf("user%d", uid),
	}
}

func (s *Stream) existingUser() int64 {
	return s.pool[s.rng.Intn(len(s.pool))]
}

func (s *Stream) newFollow() Event {
	src := s.existingUser()
	dst := s.existingUser()
	for dst == src {
		dst = s.existingUser()
	}
	// Preferential attachment continues into the live stream.
	s.pool = append(s.pool, dst)
	return Event{Kind: EventNewFollow, UID: src, TargetUID: dst}
}

func (s *Stream) newTweet() Event {
	uid := s.existingUser()
	tid := s.nextTID
	s.nextTID++
	ev := Event{
		Kind: EventNewTweet,
		UID:  uid,
		TID:  tid,
		Text: fmt.Sprintf("live status %d from user%d", tid, uid),
	}
	seenM := map[int64]bool{}
	for m := sampleCount(s.rng, s.cfg.MentionsPer); m > 0; m-- {
		target := s.existingUser()
		if target == uid || seenM[target] {
			continue
		}
		seenM[target] = true
		ev.Mentions = append(ev.Mentions, target)
		ev.Text += fmt.Sprintf(" @user%d", target)
	}
	seenT := map[int]bool{}
	for h := sampleCount(s.rng, s.cfg.TagsPer); h > 0 && s.hashtags > 0; h-- {
		tag := 1 + s.rng.Intn(s.hashtags)
		if seenT[tag] {
			continue
		}
		seenT[tag] = true
		name := fmt.Sprintf("topic%d", tag)
		ev.Tags = append(ev.Tags, name)
		ev.Text += " #" + name
	}
	return ev
}
