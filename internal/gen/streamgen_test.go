package gen

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func streamCfg() Config {
	cfg := Default()
	cfg.Users = 400
	return cfg
}

func readAll(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestGenerateStreamDeterministic pins seed determinism: two runs with
// the same config produce byte-identical files; a different seed does
// not.
func TestGenerateStreamDeterministic(t *testing.T) {
	cfg := streamCfg()
	d1, d2, d3 := t.TempDir(), t.TempDir(), t.TempDir()
	s1, err := GenerateStream(cfg, d1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateStream(cfg, d2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("summaries differ: %+v vs %+v", s1, s2)
	}
	f1, f2 := readAll(t, d1), readAll(t, d2)
	if len(f1) != len(f2) {
		t.Fatalf("file sets differ: %d vs %d", len(f1), len(f2))
	}
	for name, b := range f1 {
		if !bytes.Equal(b, f2[name]) {
			t.Errorf("%s differs between identical runs", name)
		}
	}
	cfg.Seed++
	if _, err := GenerateStream(cfg, d3); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(f1["follows.csv"], readAll(t, d3)["follows.csv"]) {
		t.Error("different seeds produced identical follows.csv")
	}
}

// TestGenerateStreamShape checks the distribution invariants shared
// with Generate: edge volume near Users x AvgFollowees, a heavy-tailed
// follower distribution (hubs), and referential integrity across the
// CSV files.
func TestGenerateStreamShape(t *testing.T) {
	cfg := streamCfg()
	dir := t.TempDir()
	sum, err := GenerateStream(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Users != cfg.Users || sum.Tweets == 0 || sum.Posts != sum.Tweets {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	want := float64(cfg.Users) * cfg.AvgFollowees
	if f := float64(sum.Follows); f < want*0.5 || f > want*1.6 {
		t.Errorf("follows %d implausible for mean %f", sum.Follows, want)
	}

	// Follower counts from users.csv: the max must dwarf the mean
	// (preferential attachment's hubs).
	lines := splitLines(t, dir, "users.csv")
	if len(lines) != cfg.Users {
		t.Fatalf("users.csv has %d rows, want %d", len(lines), cfg.Users)
	}
	maxF, totF := 0, 0
	users := map[int]bool{}
	for _, ln := range lines {
		parts := strings.Split(ln, ",")
		uid, _ := strconv.Atoi(parts[0])
		users[uid] = true
		f, err := strconv.Atoi(parts[2])
		if err != nil {
			t.Fatalf("bad followers field in %q", ln)
		}
		totF += f
		if f > maxF {
			maxF = f
		}
	}
	if totF != sum.Follows {
		t.Errorf("users.csv follower counts sum to %d, summary says %d", totF, sum.Follows)
	}
	mean := float64(totF) / float64(cfg.Users)
	if float64(maxF) < 4*mean {
		t.Errorf("max in-degree %d vs mean %.1f: no hubs — attachment skew lost", maxF, mean)
	}

	// Referential integrity: every follows/mentions endpoint is a user,
	// every tag row references a vocabulary entry, no duplicate edges.
	seen := map[[2]int]bool{}
	for _, ln := range splitLines(t, dir, "follows.csv") {
		parts := strings.Split(ln, ",")
		src, _ := strconv.Atoi(parts[0])
		dst, _ := strconv.Atoi(parts[1])
		if !users[src] || !users[dst] || src == dst {
			t.Fatalf("bad follow edge %q", ln)
		}
		e := [2]int{src, dst}
		if seen[e] {
			t.Fatalf("duplicate follow edge %q", ln)
		}
		seen[e] = true
	}
	tags := map[int]bool{}
	for _, ln := range splitLines(t, dir, "hashtags.csv") {
		hid, _ := strconv.Atoi(strings.Split(ln, ",")[0])
		tags[hid] = true
	}
	for _, ln := range splitLines(t, dir, "tags.csv") {
		hid, _ := strconv.Atoi(strings.Split(ln, ",")[1])
		if !tags[hid] {
			t.Fatalf("tags.csv references unknown hashtag in %q", ln)
		}
	}
	for _, ln := range splitLines(t, dir, "mentions.csv") {
		uid, _ := strconv.Atoi(strings.Split(ln, ",")[1])
		if !users[uid] {
			t.Fatalf("mentions.csv references unknown user in %q", ln)
		}
	}
}

// TestGenerateStreamRetweets covers the optional retweets file.
func TestGenerateStreamRetweets(t *testing.T) {
	cfg := streamCfg()
	cfg.Users = 100
	cfg.Retweets = true
	cfg.RetweetsPer = 0.5
	dir := t.TempDir()
	sum, err := GenerateStream(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Retweets == 0 {
		t.Fatal("no retweets generated")
	}
	for _, ln := range splitLines(t, dir, "retweets.csv") {
		parts := strings.Split(ln, ",")
		src, _ := strconv.Atoi(parts[0])
		dst, _ := strconv.Atoi(parts[1])
		if dst >= src || src > sum.Tweets || dst < 1 {
			t.Fatalf("bad retweet edge %q", ln)
		}
	}
}

// TestFenwick checks the sampling tree against brute force.
func TestFenwick(t *testing.T) {
	weights := []int64{3, 0, 5, 1, 7, 2}
	f := newFenwick(len(weights))
	var total int64
	for i, w := range weights {
		f.add(i, w)
		total += w
	}
	if f.total() != total {
		t.Fatalf("total %d, want %d", f.total(), total)
	}
	// Every point in [0, total) must map to the element owning that
	// span of the cumulative distribution.
	idx := 0
	var cum int64
	for r := int64(0); r < total; r++ {
		for r >= cum+weights[idx] {
			cum += weights[idx]
			idx++
		}
		if got := f.search(r); got != idx {
			t.Fatalf("search(%d) = %d, want %d", r, got, idx)
		}
	}
	// Weight updates shift the mapping.
	f.add(1, 4)
	if got := f.search(3); got != 1 {
		t.Fatalf("after update search(3) = %d, want 1", got)
	}
}

// FuzzGenerateStreamDeterminism fuzzes config knobs and asserts the
// streaming generator stays deterministic and structurally sound.
func FuzzGenerateStreamDeterminism(f *testing.F) {
	f.Add(int64(42), uint8(50), uint8(30), uint8(8))
	f.Add(int64(7), uint8(3), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, users, hashtags, avg10 uint8) {
		cfg := Default()
		cfg.Seed = seed
		cfg.Users = 1 + int(users)
		cfg.Hashtags = int(hashtags)
		cfg.AvgFollowees = float64(avg10) / 10
		d1, d2 := t.TempDir(), t.TempDir()
		s1, err := GenerateStream(cfg, d1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := GenerateStream(cfg, d2)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Fatalf("summaries differ: %+v vs %+v", s1, s2)
		}
		f1, f2 := readAll(t, d1), readAll(t, d2)
		for name, b := range f1 {
			if !bytes.Equal(b, f2[name]) {
				t.Fatalf("%s not deterministic", name)
			}
		}
		// Structural floor: every edge file parses and stays in range.
		for _, ln := range splitLines(t, d1, "follows.csv") {
			parts := strings.Split(ln, ",")
			src, err1 := strconv.Atoi(parts[0])
			dst, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || src < 1 || src > cfg.Users || dst < 1 || dst > cfg.Users || src == dst {
				t.Fatalf("bad follow row %q", ln)
			}
		}
	})
}

// splitLines reads a CSV file and returns its data rows (header
// stripped, trailing newline trimmed).
func splitLines(t *testing.T, dir, name string) []string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) < 1 {
		t.Fatalf("%s empty", name)
	}
	return lines[1:]
}
