package gen

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Streaming generation: the paper-scale path. Generate materialises the
// whole edge set before writing (the follows list, a global dedup map
// and a follower-weighted pool are all O(edges)); at SF 1 that is
// hundreds of millions of entries and the generator — not the engines —
// becomes the memory ceiling. GenerateStream emits every CSV row as it
// is drawn and keeps only O(Users) state:
//
//   - a Fenwick tree over per-user attachment weights replaces the
//     pool: user u carries weight 1 + 2·inDeg(u), exactly the pool's
//     entry multiplicity, so preferential attachment (and the
//     superlinear hub growth) is distribution-identical;
//   - duplicate follows are deduplicated per source user (each source
//     is visited once, so a global seen map adds nothing);
//   - the tweet pass needs each author's followee list for mention
//     locality; instead of holding the whole out-adjacency it re-reads
//     follows.csv sequentially — rows are grouped by source user in
//     ascending order, so one small slice per author suffices.
//
// The output is seed-deterministic for a given Config but not
// byte-identical to Generate: the two draw from their PRNGs in
// different orders. Shape invariants (heavy-tailed follower graph,
// Zipf hashtags, mention locality) are shared and pinned by tests.

// GenerateStream writes the dataset CSVs into dir (created if needed)
// without materialising the graph, and returns the summary.
func GenerateStream(cfg Config, dir string) (Summary, error) {
	if cfg.Users <= 0 {
		return Summary{}, fmt.Errorf("gen: Users must be positive")
	}
	if cfg.TweetingRatio <= 0 || cfg.TweetingRatio > 1 {
		cfg.TweetingRatio = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Summary{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sum Summary
	sum.Users = cfg.Users

	inDeg, err := streamFollows(rng, cfg, dir, &sum)
	if err != nil {
		return sum, err
	}
	if err := writeCSV(filepath.Join(dir, "users.csv"), []string{"uid", "screen_name", "followers"},
		cfg.Users, func(i int, rec []string) {
			uid := i + 1
			rec[0] = strconv.Itoa(uid)
			rec[1] = "user" + strconv.Itoa(uid)
			rec[2] = strconv.Itoa(inDeg[i])
		}); err != nil {
		return sum, err
	}
	if err := streamTweets(rng, cfg, dir, inDeg, &sum); err != nil {
		return sum, err
	}
	return sum, nil
}

// streamFollows draws the preferential-attachment follower graph,
// writing each edge as it is accepted. Returns per-user in-degrees.
func streamFollows(rng *rand.Rand, cfg Config, dir string, sum *Summary) ([]int, error) {
	n := cfg.Users
	inDeg := make([]int, n)
	// Attachment weights: 1 per user plus 2 per follower gained — the
	// same superlinear growth the pool-based generator uses.
	fen := newFenwick(n)
	for u := 0; u < n; u++ {
		fen.add(u, 1)
	}
	f, err := os.Create(filepath.Join(dir, "follows.csv"))
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString("src,dst\n"); err != nil {
		f.Close()
		return nil, err
	}
	buf := make([]byte, 0, 32)
	var followees []int
	for u := 0; u < n; u++ {
		followees = followees[:0]
		k := sampleCount(rng, cfg.AvgFollowees)
		for tries := 0; k > 0 && tries < 20*int(cfg.AvgFollowees+1); tries++ {
			t := fen.search(rng.Int63n(fen.total()))
			if t == u || intsContain(followees, t) {
				continue
			}
			followees = append(followees, t)
			inDeg[t]++
			fen.add(t, 2)
			sum.Follows++
			buf = buf[:0]
			buf = strconv.AppendInt(buf, int64(u+1), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(t+1), 10)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				f.Close()
				return nil, err
			}
			k--
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return inDeg, f.Close()
}

// streamTweets draws tweets, posts, mentions, tags (and optional
// retweets), one author at a time, streaming each row out as drawn.
// Mention targets mix the author's own followees (locality) with a
// follower-weighted global draw, as in the materialising generator.
func streamTweets(rng *rand.Rand, cfg Config, dir string, inDeg []int, sum *Summary) error {
	tweeters := int(float64(cfg.Users) * cfg.TweetingRatio)
	if tweeters < 1 {
		tweeters = 1
	}
	var tagZipf *rand.Zipf
	if cfg.Hashtags > 0 {
		tagZipf = rand.NewZipf(rng, 1.2, 3, uint64(cfg.Hashtags-1))
	}
	// Global mention draw: follower-weighted, final weights.
	fen := newFenwick(cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		fen.add(u, int64(1+2*inDeg[u]))
	}

	fol, err := newFolloweeScanner(filepath.Join(dir, "follows.csv"))
	if err != nil {
		return err
	}
	defer fol.close()

	files := map[string]*streamCSV{}
	for name, header := range map[string]string{
		"tweets.csv":   "tid,text",
		"posts.csv":    "uid,tid",
		"mentions.csv": "tid,uid",
		"tags.csv":     "tid,hid",
	} {
		sc, err := newStreamCSV(filepath.Join(dir, name), header)
		if err != nil {
			return err
		}
		defer sc.close()
		files[name] = sc
	}
	var retweetsF *streamCSV
	if cfg.Retweets {
		if retweetsF, err = newStreamCSV(filepath.Join(dir, "retweets.csv"), "src,dst"); err != nil {
			return err
		}
		defer retweetsF.close()
	}

	usedTags := map[int]bool{}
	tid := 0
	var sb strings.Builder
	for u := 1; u <= tweeters; u++ {
		followees, err := fol.followeesOf(u)
		if err != nil {
			return err
		}
		for k := 0; k < cfg.TweetsPerUser; k++ {
			tid++
			sb.Reset()
			sb.WriteString("status ")
			sb.WriteString(strconv.Itoa(tid))
			sb.WriteString(" from user")
			sb.WriteString(strconv.Itoa(u))
			if err := files["posts.csv"].pair(u, tid); err != nil {
				return err
			}
			sum.Posts++

			seenM := map[int]bool{}
			for m := sampleCount(rng, cfg.MentionsPer); m > 0 && cfg.Users > 1; m-- {
				var target int
				if len(followees) > 0 && rng.Float64() < 0.5 {
					target = followees[rng.Intn(len(followees))]
				} else {
					target = fen.search(rng.Int63n(fen.total())) + 1
				}
				if target == u || seenM[target] {
					continue
				}
				seenM[target] = true
				if err := files["mentions.csv"].pair(tid, target); err != nil {
					return err
				}
				sum.Mentions++
				sb.WriteString(" @user")
				sb.WriteString(strconv.Itoa(target))
			}
			seenT := map[int]bool{}
			for h := sampleCount(rng, cfg.TagsPer); h > 0 && cfg.Hashtags > 0; h-- {
				tag := 1 + int(tagZipf.Uint64())
				if seenT[tag] {
					continue
				}
				seenT[tag] = true
				usedTags[tag] = true
				if err := files["tags.csv"].pair(tid, tag); err != nil {
					return err
				}
				sum.Tags++
				sb.WriteString(" #topic")
				sb.WriteString(strconv.Itoa(tag))
			}
			if err := files["tweets.csv"].row(strconv.Itoa(tid), sb.String()); err != nil {
				return err
			}
			if cfg.Retweets && tid > 1 {
				seenR := map[int]bool{}
				for r := sampleCount(rng, cfg.RetweetsPer); r > 0; r-- {
					orig := 1 + rng.Intn(tid-1)
					if seenR[orig] {
						continue
					}
					seenR[orig] = true
					if err := retweetsF.pair(tid, orig); err != nil {
						return err
					}
					sum.Retweets++
				}
			}
		}
	}
	sum.Tweets = tid

	var tagList []int
	for t := range usedTags {
		tagList = append(tagList, t)
	}
	sort.Ints(tagList)
	sum.Hashtags = len(tagList)
	return writeCSV(filepath.Join(dir, "hashtags.csv"), []string{"hid", "tag"},
		len(tagList), func(i int, rec []string) {
			rec[0] = strconv.Itoa(tagList[i])
			rec[1] = "topic" + strconv.Itoa(tagList[i])
		})
}

// intsContain is a linear membership test — followee lists are mean
// AvgFollowees long, far below the point where a map would pay off.
func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// ---------- Fenwick tree (weighted sampling in O(log n)) ----------

// fenwick is a binary indexed tree over int64 weights supporting point
// updates, prefix sums, and inverse-prefix search — the classic
// replacement for a multiplicity pool when the pool would be O(edges).
type fenwick struct {
	tree []int64
	sum  int64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

// add increases element i's weight by w.
func (f *fenwick) add(i int, w int64) {
	f.sum += w
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += w
	}
}

// total returns the sum of all weights.
func (f *fenwick) total() int64 { return f.sum }

// search returns the smallest i whose prefix sum exceeds r (0 <= r <
// total): a uniform r picks i with probability weight(i)/total.
func (f *fenwick) search(r int64) int {
	i := 0
	mask := 1
	for mask<<1 < len(f.tree) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := i + mask
		if next < len(f.tree) && f.tree[next] <= r {
			r -= f.tree[next]
			i = next
		}
	}
	return i // 0-based element index
}

// ---------- streaming CSV plumbing ----------

// streamCSV is a buffered append-only CSV writer for the simple
// numeric/text rows the generator emits (no quoting needed beyond
// what the static generator produces).
type streamCSV struct {
	f   *os.File
	w   *bufio.Writer
	buf []byte
	err error
}

func newStreamCSV(path, header string) (*streamCSV, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(header + "\n"); err != nil {
		f.Close()
		return nil, err
	}
	return &streamCSV{f: f, w: w, buf: make([]byte, 0, 64)}, nil
}

func (s *streamCSV) pair(a, b int) error {
	s.buf = s.buf[:0]
	s.buf = strconv.AppendInt(s.buf, int64(a), 10)
	s.buf = append(s.buf, ',')
	s.buf = strconv.AppendInt(s.buf, int64(b), 10)
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

// row writes one record, CSV-quoting any field that needs it — tweet
// text contains no quotes or commas today, but the writer stays correct
// if that changes.
func (s *streamCSV) row(fields ...string) error {
	s.buf = s.buf[:0]
	for i, f := range fields {
		if i > 0 {
			s.buf = append(s.buf, ',')
		}
		if strings.ContainsAny(f, ",\"\n") {
			s.buf = append(s.buf, '"')
			s.buf = append(s.buf, strings.ReplaceAll(f, `"`, `""`)...)
			s.buf = append(s.buf, '"')
		} else {
			s.buf = append(s.buf, f...)
		}
	}
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

func (s *streamCSV) close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// followeeScanner streams follows.csv back in, returning each source
// user's followee list in turn. Rows are grouped by source in
// ascending order (the order streamFollows wrote them), so only the
// current group is ever held.
type followeeScanner struct {
	f    *os.File
	r    *bufio.Scanner
	next [2]int // lookahead row; next[0] == 0 means exhausted
	out  []int
}

func newFolloweeScanner(path string) (*followeeScanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	sc.Scan() // header
	s := &followeeScanner{f: f, r: sc}
	s.advance()
	return s, nil
}

func (s *followeeScanner) advance() {
	s.next = [2]int{}
	if !s.r.Scan() {
		return
	}
	line := s.r.Text()
	comma := strings.IndexByte(line, ',')
	if comma < 0 {
		return
	}
	src, err1 := strconv.Atoi(line[:comma])
	dst, err2 := strconv.Atoi(line[comma+1:])
	if err1 == nil && err2 == nil {
		s.next = [2]int{src, dst}
	}
}

// followeesOf returns user u's followees. Callers must ask for users in
// ascending order; the returned slice is valid until the next call.
func (s *followeeScanner) followeesOf(u int) ([]int, error) {
	s.out = s.out[:0]
	for s.next[0] != 0 && s.next[0] < u {
		s.advance() // skip users before u (shouldn't happen in order)
	}
	for s.next[0] == u {
		s.out = append(s.out, s.next[1])
		s.advance()
	}
	return s.out, s.r.Err()
}

func (s *followeeScanner) close() error { return s.f.Close() }
