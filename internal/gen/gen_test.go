package gen

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Users = 200
	dirA, dirB := t.TempDir(), t.TempDir()
	sumA, err := Generate(cfg, dirA)
	if err != nil {
		t.Fatal(err)
	}
	sumB, err := Generate(cfg, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if sumA != sumB {
		t.Fatalf("summaries differ: %+v vs %+v", sumA, sumB)
	}
	for _, f := range []string{"users.csv", "tweets.csv", "hashtags.csv", "follows.csv", "posts.csv", "mentions.csv", "tags.csv"} {
		a, err := os.ReadFile(filepath.Join(dirA, f))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, f))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between runs", f)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := Default()
	cfg.Users = 200
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := Generate(cfg, dirA); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	if _, err := Generate(cfg, dirB); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(filepath.Join(dirA, "follows.csv"))
	b, _ := os.ReadFile(filepath.Join(dirB, "follows.csv"))
	if string(a) == string(b) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestSummaryMatchesFiles(t *testing.T) {
	cfg := Default()
	cfg.Users = 300
	dir := t.TempDir()
	sum, err := Generate(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range []string{"users.csv", "tweets.csv", "hashtags.csv", "follows.csv", "posts.csv", "mentions.csv", "tags.csv"} {
		counts[f] = countRows(t, filepath.Join(dir, f))
	}
	if counts["users.csv"] != sum.Users || counts["tweets.csv"] != sum.Tweets ||
		counts["hashtags.csv"] != sum.Hashtags || counts["follows.csv"] != sum.Follows ||
		counts["posts.csv"] != sum.Posts || counts["mentions.csv"] != sum.Mentions ||
		counts["tags.csv"] != sum.Tags {
		t.Errorf("summary %+v vs files %v", sum, counts)
	}
	if sum.TotalNodes() != sum.Users+sum.Tweets+sum.Hashtags {
		t.Error("TotalNodes arithmetic")
	}
	if sum.TotalEdges() != sum.Follows+sum.Posts+sum.Mentions+sum.Tags {
		t.Error("TotalEdges arithmetic")
	}
}

func countRows(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return len(recs) - 1 // header
}

func TestPaperRatiosPreserved(t *testing.T) {
	// Table 1 ratios: follows/users ≈ 11.5, posts == tweets,
	// mentions/tweets ≈ 0.46, tags/tweets ≈ 0.30.
	cfg := Default()
	cfg.Users = 3000
	sum, err := Generate(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Posts != sum.Tweets {
		t.Errorf("posts %d != tweets %d", sum.Posts, sum.Tweets)
	}
	followRatio := float64(sum.Follows) / float64(sum.Users)
	if followRatio < 8 || followRatio > 16 {
		t.Errorf("follows/users = %.2f, want ≈11.5", followRatio)
	}
	mentionRatio := float64(sum.Mentions) / float64(sum.Tweets)
	if mentionRatio < 0.2 || mentionRatio > 0.9 {
		t.Errorf("mentions/tweets = %.2f, want ≈0.46", mentionRatio)
	}
	tagRatio := float64(sum.Tags) / float64(sum.Tweets)
	if tagRatio < 0.1 || tagRatio > 0.7 {
		t.Errorf("tags/tweets = %.2f, want ≈0.30", tagRatio)
	}
}

func TestHeavyTailedFollowerDistribution(t *testing.T) {
	cfg := Default()
	cfg.Users = 2000
	dir := t.TempDir()
	if _, err := Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	// Read follower counts from users.csv; the max should far exceed
	// the mean (preferential attachment).
	f, err := os.Open(filepath.Join(dir, "users.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var total, max int
	for _, rec := range recs[1:] {
		n, _ := strconv.Atoi(rec[2])
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(recs)-1)
	if float64(max) < 10*mean {
		t.Errorf("max followers %d vs mean %.1f: distribution not heavy-tailed", max, mean)
	}
}

func TestNoDuplicateEdgesOrSelfLoops(t *testing.T) {
	cfg := Default()
	cfg.Users = 500
	dir := t.TempDir()
	if _, err := Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"follows.csv", "mentions.csv", "tags.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")[1:]
		seen := map[string]bool{}
		for _, l := range lines {
			if seen[l] {
				t.Fatalf("%s: duplicate edge %s", f, l)
			}
			seen[l] = true
			if f == "follows.csv" {
				parts := strings.Split(l, ",")
				if parts[0] == parts[1] {
					t.Fatalf("follows self-loop: %s", l)
				}
			}
		}
	}
}

func TestFollowersColumnMatchesInDegree(t *testing.T) {
	cfg := Default()
	cfg.Users = 400
	dir := t.TempDir()
	if _, err := Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	inDeg := map[string]int{}
	data, _ := os.ReadFile(filepath.Join(dir, "follows.csv"))
	for _, l := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		dst := strings.Split(l, ",")[1]
		inDeg[dst]++
	}
	users, _ := os.ReadFile(filepath.Join(dir, "users.csv"))
	for _, l := range strings.Split(strings.TrimSpace(string(users)), "\n")[1:] {
		parts := strings.Split(l, ",")
		want := inDeg[parts[0]]
		got, _ := strconv.Atoi(parts[2])
		if got != want {
			t.Fatalf("user %s followers column %d, in-degree %d", parts[0], got, want)
		}
	}
}

func TestRetweetsGeneration(t *testing.T) {
	cfg := Default()
	cfg.Users = 200
	cfg.Retweets = true
	cfg.RetweetsPer = 0.5
	dir := t.TempDir()
	sum, err := Generate(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Retweets == 0 {
		t.Fatal("no retweets generated")
	}
	if _, err := os.Stat(filepath.Join(dir, "retweets.csv")); err != nil {
		t.Fatal(err)
	}
	// Retweets always reference earlier tweets (no cycles).
	data, _ := os.ReadFile(filepath.Join(dir, "retweets.csv"))
	for _, l := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		parts := strings.Split(l, ",")
		src, _ := strconv.Atoi(parts[0])
		dst, _ := strconv.Atoi(parts[1])
		if dst >= src {
			t.Fatalf("retweet %s not of an earlier tweet", l)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{}, t.TempDir()); err == nil {
		t.Error("zero config accepted")
	}
	cfg := Default()
	cfg.Users = 10
	if _, err := Generate(cfg, "/dev/null/nope"); err == nil {
		t.Error("bad directory accepted")
	}
}

func TestMentionsRespectZipf(t *testing.T) {
	// The most-mentioned user should collect far more mentions than the
	// median mentioned user.
	cfg := Default()
	cfg.Users = 1000
	cfg.MentionsPer = 2
	dir := t.TempDir()
	if _, err := Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	data, _ := os.ReadFile(filepath.Join(dir, "mentions.csv"))
	for _, l := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		counts[strings.Split(l, ",")[1]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20 {
		t.Errorf("max mention count %d: mention popularity not skewed", max)
	}
}
