package idx

import (
	"sort"

	"twigraph/internal/graph"
)

// btreeDegree is the maximum number of keys per node (order 2*t-1 with
// t=32); nodes split at 63 keys.
const btreeDegree = 64

// Entry is one B-tree key: a property value plus the id of the entity
// holding it. Entries order by value first (graph.Value.Compare) and id
// second, so duplicate values coexist.
type Entry struct {
	Value graph.Value
	ID    uint64
}

func entryLess(a, b Entry) bool {
	if c := a.Value.Compare(b.Value); c != 0 {
		return c < 0
	}
	return a.ID < b.ID
}

type btreeNode struct {
	entries  []Entry
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// BTree is an in-memory B-tree over (value, id) entries, used for range
// predicates (e.g. Q1.1's "follower count greater than a threshold") and
// ORDER BY scans. Not safe for concurrent mutation.
type BTree struct {
	root *btreeNode
	size int
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &btreeNode{}} }

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// Insert adds e; duplicates (same value and id) are ignored.
func (t *BTree) Insert(e Entry) {
	if t.contains(e) {
		return
	}
	t.size++
	r := t.root
	if len(r.entries) == btreeDegree-1 {
		newRoot := &btreeNode{children: []*btreeNode{r}}
		newRoot.splitChild(0)
		t.root = newRoot
	}
	t.root.insertNonFull(e)
}

func (t *BTree) contains(e Entry) bool {
	n := t.root
	for {
		i := sort.Search(len(n.entries), func(i int) bool { return !entryLess(n.entries[i], e) })
		if i < len(n.entries) && !entryLess(e, n.entries[i]) {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.entries) / 2
	midEntry := child.entries[mid]
	right := &btreeNode{entries: append([]Entry(nil), child.entries[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]
	n.entries = append(n.entries, Entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = midEntry
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insertNonFull(e Entry) {
	i := sort.Search(len(n.entries), func(i int) bool { return !entryLess(n.entries[i], e) })
	if n.leaf() {
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return
	}
	if len(n.children[i].entries) == btreeDegree-1 {
		n.splitChild(i)
		if entryLess(n.entries[i], e) {
			i++
		}
	}
	n.children[i].insertNonFull(e)
}

// Delete removes e if present and reports whether it was found.
// Deletion uses lazy rebalancing: underflowed nodes are tolerated, which
// keeps the implementation simple while preserving ordering invariants
// (the tree is read-heavy in this workload).
func (t *BTree) Delete(e Entry) bool {
	if !t.contains(e) {
		return false
	}
	t.size--
	t.root.delete(e)
	// Shrink an empty root with a single child.
	for !t.root.leaf() && len(t.root.entries) == 0 && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return true
}

func (n *btreeNode) delete(e Entry) bool {
	i := sort.Search(len(n.entries), func(i int) bool { return !entryLess(n.entries[i], e) })
	if i < len(n.entries) && !entryLess(e, n.entries[i]) {
		if n.leaf() {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return true
		}
		// Replace with predecessor from the left subtree.
		pred := n.children[i].maxEntry()
		n.entries[i] = pred
		return n.children[i].delete(pred)
	}
	if n.leaf() {
		return false
	}
	return n.children[i].delete(e)
}

func (n *btreeNode) maxEntry() Entry {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.entries[len(n.entries)-1]
}

// Ascend visits all entries in ascending order until fn returns false.
func (t *BTree) Ascend(fn func(Entry) bool) {
	t.root.ascend(fn)
}

func (n *btreeNode) ascend(fn func(Entry) bool) bool {
	for i, e := range n.entries {
		if !n.leaf() && !n.children[i].ascend(fn) {
			return false
		}
		if !fn(e) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(fn)
	}
	return true
}

// AscendRange visits entries with from ≤ value < to (by value ordering,
// ignoring id) until fn returns false. A nil from starts at the minimum;
// a nil to ends at the maximum.
func (t *BTree) AscendRange(from, to *graph.Value, fn func(Entry) bool) {
	t.root.ascendRange(from, to, fn)
}

func (n *btreeNode) ascendRange(from, to *graph.Value, fn func(Entry) bool) bool {
	lo := 0
	if from != nil {
		lo = sort.Search(len(n.entries), func(i int) bool {
			return n.entries[i].Value.Compare(*from) >= 0
		})
	}
	for i := lo; i < len(n.entries); i++ {
		if !n.leaf() && !n.children[i].ascendRange(from, to, fn) {
			return false
		}
		e := n.entries[i]
		if to != nil && e.Value.Compare(*to) >= 0 {
			return false
		}
		if !fn(e) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascendRange(from, to, fn)
	}
	return true
}

// Descend visits all entries in descending order until fn returns false.
func (t *BTree) Descend(fn func(Entry) bool) {
	t.root.descend(fn)
}

func (n *btreeNode) descend(fn func(Entry) bool) bool {
	if !n.leaf() && !n.children[len(n.children)-1].descend(fn) {
		return false
	}
	for i := len(n.entries) - 1; i >= 0; i-- {
		if !fn(n.entries[i]) {
			return false
		}
		if !n.leaf() && !n.children[i].descend(fn) {
			return false
		}
	}
	return true
}
