package idx

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"twigraph/internal/bitmap"
	"twigraph/internal/graph"
)

func TestHashIndexAddLookupRemove(t *testing.T) {
	ix := NewHashIndex("")
	ix.Add(graph.IntValue(531), 10)
	ix.Add(graph.IntValue(531), 11)
	ix.Add(graph.StringValue("531"), 99) // distinct kind must not collide

	b := ix.Lookup(graph.IntValue(531))
	if b == nil || b.Cardinality() != 2 {
		t.Fatalf("Lookup = %v", b)
	}
	if got := ix.Lookup(graph.StringValue("531")); got == nil || !got.Contains(99) || got.Cardinality() != 1 {
		t.Errorf("string posting = %v", got)
	}
	if id, ok := ix.LookupOne(graph.IntValue(531)); !ok || id != 10 {
		t.Errorf("LookupOne = %d,%v", id, ok)
	}
	ix.Remove(graph.IntValue(531), 10)
	ix.Remove(graph.IntValue(531), 11)
	if ix.Lookup(graph.IntValue(531)) != nil {
		t.Error("posting not removed when empty")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Lookups() != 4 {
		t.Errorf("Lookups = %d", ix.Lookups())
	}
}

func TestHashIndexLookupMissing(t *testing.T) {
	ix := NewHashIndex("")
	if ix.Lookup(graph.IntValue(1)) != nil {
		t.Error("missing value returned postings")
	}
	if _, ok := ix.LookupOne(graph.IntValue(1)); ok {
		t.Error("LookupOne found missing value")
	}
}

func TestHashIndexPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "uid.idx")
	ix := NewHashIndex(path)
	ix.Add(graph.IntValue(1), 100)
	ix.Add(graph.IntValue(1), 101)
	ix.Add(graph.StringValue("#go"), 7)
	ix.Add(graph.FloatValue(2.5), 8)
	ix.Add(graph.BoolValue(true), 9)
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}

	ix2, err := OpenHashIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if b := ix2.Lookup(graph.IntValue(1)); b == nil || b.Cardinality() != 2 {
		t.Errorf("int posting after reload = %v", b)
	}
	if b := ix2.Lookup(graph.StringValue("#go")); b == nil || !b.Contains(7) {
		t.Errorf("string posting after reload = %v", b)
	}
	if b := ix2.Lookup(graph.FloatValue(2.5)); b == nil || !b.Contains(8) {
		t.Errorf("float posting after reload = %v", b)
	}
	if b := ix2.Lookup(graph.BoolValue(true)); b == nil || !b.Contains(9) {
		t.Errorf("bool posting after reload = %v", b)
	}
	// ForEach sees all four distinct values after reload.
	n := 0
	ix2.ForEach(func(graph.Value, *bitmap.Bitmap) bool { n++; return true })
	if n != 4 {
		t.Errorf("ForEach visited %d values, want 4", n)
	}
}

func TestHashIndexForEach(t *testing.T) {
	ix := NewHashIndex("")
	ix.Add(graph.IntValue(1), 1)
	ix.Add(graph.IntValue(2), 2)
	ix.Add(graph.IntValue(3), 3)
	n := 0
	ix.ForEach(func(v graph.Value, b *bitmap.Bitmap) bool {
		if b.Cardinality() != 1 {
			t.Errorf("posting for %v has cardinality %d", v, b.Cardinality())
		}
		n++
		return n < 2 // early stop works
	})
	if n != 2 {
		t.Errorf("visited %d", n)
	}
}

func TestOpenHashIndexMissingFile(t *testing.T) {
	ix, err := OpenHashIndex(filepath.Join(t.TempDir(), "nope.idx"))
	if err != nil || ix.Len() != 0 {
		t.Errorf("ix=%v err=%v", ix, err)
	}
}

func TestBTreeInsertAscend(t *testing.T) {
	tr := NewBTree()
	rng := rand.New(rand.NewSource(5))
	vals := rng.Perm(2000)
	for _, v := range vals {
		tr.Insert(Entry{Value: graph.IntValue(int64(v)), ID: uint64(v)})
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := int64(-1)
	n := 0
	tr.Ascend(func(e Entry) bool {
		if e.Value.Int() <= prev {
			t.Fatalf("out of order: %d after %d", e.Value.Int(), prev)
		}
		prev = e.Value.Int()
		n++
		return true
	})
	if n != 2000 {
		t.Errorf("visited %d", n)
	}
}

func TestBTreeDuplicateInsertIgnored(t *testing.T) {
	tr := NewBTree()
	e := Entry{Value: graph.IntValue(5), ID: 9}
	tr.Insert(e)
	tr.Insert(e)
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Same value, different id is kept.
	tr.Insert(Entry{Value: graph.IntValue(5), ID: 10})
	if tr.Len() != 2 {
		t.Errorf("Len with dup value = %d", tr.Len())
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 100; i++ {
		tr.Insert(Entry{Value: graph.IntValue(int64(i)), ID: uint64(i)})
	}
	from, to := graph.IntValue(10), graph.IntValue(20)
	var got []int64
	tr.AscendRange(&from, &to, func(e Entry) bool {
		got = append(got, e.Value.Int())
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("range = %v", got)
	}
	// Open-ended from.
	var got2 []int64
	tr.AscendRange(nil, &from, func(e Entry) bool {
		got2 = append(got2, e.Value.Int())
		return true
	})
	if len(got2) != 10 {
		t.Errorf("open range = %v", got2)
	}
	// Open-ended to.
	n := 0
	tr.AscendRange(&to, nil, func(Entry) bool { n++; return true })
	if n != 80 {
		t.Errorf("to-open counted %d", n)
	}
}

func TestBTreeDescend(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 500; i++ {
		tr.Insert(Entry{Value: graph.IntValue(int64(i)), ID: uint64(i)})
	}
	prev := int64(500)
	n := 0
	tr.Descend(func(e Entry) bool {
		if e.Value.Int() >= prev {
			t.Fatalf("descend out of order: %d then %d", prev, e.Value.Int())
		}
		prev = e.Value.Int()
		n++
		return n < 100 // early stop
	})
	if n != 100 {
		t.Errorf("visited %d", n)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 1000; i++ {
		tr.Insert(Entry{Value: graph.IntValue(int64(i)), ID: uint64(i)})
	}
	rng := rand.New(rand.NewSource(11))
	deleted := map[int]bool{}
	for _, i := range rng.Perm(1000)[:600] {
		if !tr.Delete(Entry{Value: graph.IntValue(int64(i)), ID: uint64(i)}) {
			t.Fatalf("Delete(%d) = false", i)
		}
		deleted[i] = true
	}
	if tr.Delete(Entry{Value: graph.IntValue(99999), ID: 1}) {
		t.Error("deleted a missing entry")
	}
	if tr.Len() != 400 {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := int64(-1)
	tr.Ascend(func(e Entry) bool {
		if deleted[int(e.Value.Int())] {
			t.Fatalf("deleted entry %d still present", e.Value.Int())
		}
		if e.Value.Int() <= prev {
			t.Fatalf("order violated after deletes")
		}
		prev = e.Value.Int()
		return true
	})
}

func TestBTreeAgainstModel(t *testing.T) {
	check := func(ops []int16) bool {
		tr := NewBTree()
		model := map[int64]bool{}
		for _, op := range ops {
			v := int64(op) % 64
			if v < 0 {
				v = -v
			}
			if op%2 == 0 {
				tr.Insert(Entry{Value: graph.IntValue(v), ID: uint64(v)})
				model[v] = true
			} else {
				tr.Delete(Entry{Value: graph.IntValue(v), ID: uint64(v)})
				delete(model, v)
			}
		}
		var want []int64
		for v := range model {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		tr.Ascend(func(e Entry) bool {
			got = append(got, e.Value.Int())
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLabelScan(t *testing.T) {
	ls := NewLabelScan("")
	ls.Add(1, 10)
	ls.Add(1, 11)
	ls.Add(2, 12)
	if ls.Count(1) != 2 || ls.Count(2) != 1 || ls.Count(3) != 0 {
		t.Errorf("counts = %d,%d,%d", ls.Count(1), ls.Count(2), ls.Count(3))
	}
	if b := ls.Nodes(1); b == nil || !b.Contains(10) || !b.Contains(11) {
		t.Errorf("Nodes(1) = %v", b)
	}
	ls.Remove(1, 10)
	if ls.Count(1) != 1 {
		t.Errorf("after Remove Count(1) = %d", ls.Count(1))
	}
	ls.Remove(9, 1) // removing from an unknown label is a no-op
}

func TestLabelScanPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.idx")
	ls := NewLabelScan(path)
	ls.Add(1, 100)
	ls.Add(2, 200)
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}
	ls2, err := OpenLabelScan(path)
	if err != nil {
		t.Fatal(err)
	}
	if ls2.Count(1) != 1 || !ls2.Nodes(2).Contains(200) {
		t.Error("reload mismatch")
	}
	// Missing file opens empty.
	ls3, err := OpenLabelScan(filepath.Join(t.TempDir(), "none.idx"))
	if err != nil || ls3.Count(1) != 0 {
		t.Errorf("missing file: %v %d", err, ls3.Count(1))
	}
}

func TestMemoryOnlySyncIsNoop(t *testing.T) {
	if err := NewHashIndex("").Sync(); err != nil {
		t.Error(err)
	}
	if err := NewLabelScan("").Sync(); err != nil {
		t.Error(err)
	}
}
