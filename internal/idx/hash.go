// Package idx implements the index structures used by the Neo4j-analog
// engine: an equality hash index (the schema indexes the paper creates
// on "all unique node identifiers" after import), an in-memory B-tree
// for ordered and range scans, and a label scan store mapping each node
// label to the set of its nodes.
//
// Indexes are held in memory and snapshot to disk on Sync/Close; on open
// the snapshot is loaded if present. This mirrors the operational shape
// the paper describes (indexes built after bulk import, then reused).
package idx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"twigraph/internal/bitmap"
	"twigraph/internal/graph"
	"twigraph/internal/vfs"
)

// HashIndex maps property values to sets of entity ids. Lookup is O(1)
// in the number of distinct values; each posting set is a compressed
// bitmap. Safe for concurrent use: lookups return snapshot copies, so
// readers never observe a posting set mid-mutation.
type HashIndex struct {
	mu       sync.RWMutex
	fsys     vfs.FS
	path     string
	postings map[string]*bitmap.Bitmap // Value.Key() -> ids
	vals     map[string]graph.Value    // Value.Key() -> value (for iteration)
	lookups  atomic.Uint64
}

// NewHashIndex creates an index that snapshots to path (empty path means
// memory-only).
func NewHashIndex(path string) *HashIndex {
	return NewHashIndexFS(vfs.OS, path)
}

// NewHashIndexFS is NewHashIndex on an explicit filesystem.
func NewHashIndexFS(fsys vfs.FS, path string) *HashIndex {
	return &HashIndex{
		fsys:     fsys,
		path:     path,
		postings: make(map[string]*bitmap.Bitmap),
		vals:     make(map[string]graph.Value),
	}
}

// OpenHashIndex loads the snapshot at path if it exists.
func OpenHashIndex(path string) (*HashIndex, error) {
	return OpenHashIndexFS(vfs.OS, path)
}

// OpenHashIndexFS is OpenHashIndex on an explicit filesystem.
func OpenHashIndexFS(fsys vfs.FS, path string) (*HashIndex, error) {
	ix := NewHashIndexFS(fsys, path)
	f, err := vfs.Open(fsys, path)
	if err != nil {
		if os.IsNotExist(err) {
			return ix, nil
		}
		return nil, err
	}
	defer f.Close()
	if err := ix.load(bufio.NewReader(f)); err != nil {
		return nil, fmt.Errorf("idx: loading %s: %w", path, err)
	}
	return ix, nil
}

// Add indexes id under v.
func (ix *HashIndex) Add(v graph.Value, id uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := v.Key()
	b, ok := ix.postings[k]
	if !ok {
		b = bitmap.New()
		ix.postings[k] = b
		ix.vals[k] = v
	}
	b.Add(id)
}

// Remove drops id from v's posting set.
func (ix *HashIndex) Remove(v graph.Value, id uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := v.Key()
	if b, ok := ix.postings[k]; ok {
		b.Remove(id)
		if b.IsEmpty() {
			delete(ix.postings, k)
			delete(ix.vals, k)
		}
	}
}

// Lookup returns a snapshot of the posting set for v, or nil when
// absent. The caller owns the returned bitmap.
func (ix *HashIndex) Lookup(v graph.Value) *bitmap.Bitmap {
	ix.lookups.Add(1)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if b, ok := ix.postings[v.Key()]; ok {
		return b.Clone()
	}
	return nil
}

// LookupOne returns an arbitrary (lowest) id indexed under v, for unique
// indexes.
func (ix *HashIndex) LookupOne(v graph.Value) (uint64, bool) {
	b := ix.Lookup(v)
	if b == nil {
		return 0, false
	}
	return b.Min()
}

// Len returns the number of distinct indexed values.
func (ix *HashIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Lookups returns how many Lookup calls have been served.
func (ix *HashIndex) Lookups() uint64 { return ix.lookups.Load() }

// ForEach visits every (value, postings) pair in unspecified order,
// holding the read lock; fn must not mutate the index or the bitmaps.
func (ix *HashIndex) ForEach(fn func(v graph.Value, ids *bitmap.Bitmap) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for k, b := range ix.postings {
		if !fn(ix.vals[k], b) {
			return
		}
	}
}

// Sync writes the snapshot to the index path, fsyncing the temp file
// before renaming it into place.
func (ix *HashIndex) Sync() error {
	if ix.path == "" {
		return nil
	}
	tmp := ix.path + ".tmp"
	f, err := vfs.Create(ix.fsys, tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := ix.save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return ix.fsys.Rename(tmp, ix.path)
}

// Snapshot format: count, then per entry a serialised value and bitmap.
func (ix *HashIndex) save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ix.postings))); err != nil {
		return err
	}
	for k, b := range ix.postings {
		if err := graph.WriteValue(w, ix.vals[k]); err != nil {
			return err
		}
		if _, err := b.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

func (ix *HashIndex) load(r io.Reader) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		v, err := graph.ReadValue(r)
		if err != nil {
			return err
		}
		b := bitmap.New()
		if _, err := b.ReadFrom(r); err != nil {
			return err
		}
		k := v.Key()
		ix.postings[k] = b
		ix.vals[k] = v
	}
	return nil
}
