package idx

import (
	"bufio"
	"encoding/binary"
	"io"
	"os"
	"sync"

	"twigraph/internal/bitmap"
	"twigraph/internal/graph"
	"twigraph/internal/vfs"
)

// LabelScan maps each node label to the bitmap of node ids carrying it —
// Neo4j's label scan store, the access path behind `MATCH (n:user)` when
// no narrower index applies.
// Safe for concurrent use; Nodes returns snapshot copies.
type LabelScan struct {
	mu     sync.RWMutex
	fsys   vfs.FS
	path   string
	labels map[graph.TypeID]*bitmap.Bitmap
}

// NewLabelScan creates a label scan store that snapshots to path (empty
// path means memory-only).
func NewLabelScan(path string) *LabelScan {
	return NewLabelScanFS(vfs.OS, path)
}

// NewLabelScanFS is NewLabelScan on an explicit filesystem.
func NewLabelScanFS(fsys vfs.FS, path string) *LabelScan {
	return &LabelScan{fsys: fsys, path: path, labels: make(map[graph.TypeID]*bitmap.Bitmap)}
}

// OpenLabelScan loads the snapshot at path if present.
func OpenLabelScan(path string) (*LabelScan, error) {
	return OpenLabelScanFS(vfs.OS, path)
}

// OpenLabelScanFS is OpenLabelScan on an explicit filesystem.
func OpenLabelScanFS(fsys vfs.FS, path string) (*LabelScan, error) {
	ls := NewLabelScanFS(fsys, path)
	f, err := vfs.Open(fsys, path)
	if err != nil {
		if os.IsNotExist(err) {
			return ls, nil
		}
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		var label uint32
		if err := binary.Read(r, binary.LittleEndian, &label); err != nil {
			return nil, err
		}
		b := bitmap.New()
		if _, err := b.ReadFrom(r); err != nil {
			return nil, err
		}
		ls.labels[graph.TypeID(label)] = b
	}
	return ls, nil
}

// Add records that node id has the label.
func (ls *LabelScan) Add(label graph.TypeID, id graph.NodeID) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	b, ok := ls.labels[label]
	if !ok {
		b = bitmap.New()
		ls.labels[label] = b
	}
	b.Add(uint64(id))
}

// Remove drops node id from the label.
func (ls *LabelScan) Remove(label graph.TypeID, id graph.NodeID) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if b, ok := ls.labels[label]; ok {
		b.Remove(uint64(id))
	}
}

// Nodes returns a snapshot of the node ids with the label, or nil. The
// caller owns the returned bitmap.
func (ls *LabelScan) Nodes(label graph.TypeID) *bitmap.Bitmap {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if b, ok := ls.labels[label]; ok {
		return b.Clone()
	}
	return nil
}

// Count returns the number of nodes with the label.
func (ls *LabelScan) Count(label graph.TypeID) int {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if b, ok := ls.labels[label]; ok {
		return b.Cardinality()
	}
	return 0
}

// Sync writes the snapshot to disk, fsyncing the temp file before
// renaming it into place.
func (ls *LabelScan) Sync() error {
	if ls.path == "" {
		return nil
	}
	tmp := ls.path + ".tmp"
	f, err := vfs.Create(ls.fsys, tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := ls.save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return ls.fsys.Rename(tmp, ls.path)
}

func (ls *LabelScan) save(w io.Writer) error {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ls.labels))); err != nil {
		return err
	}
	for label, b := range ls.labels {
		if err := binary.Write(w, binary.LittleEndian, uint32(label)); err != nil {
			return err
		}
		if _, err := b.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}
